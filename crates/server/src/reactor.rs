//! The evented server core: one thread, a readiness loop, and a
//! per-connection state machine.
//!
//! Where the threaded backend spends a whole OS thread per in-flight
//! connection (and 20 ms stepped reads to stay responsive), the reactor
//! multiplexes *every* connection over a single nonblocking readiness
//! loop ([`crate::event::EventBackend`]): sockets are only touched when
//! the kernel says they are ready, so ten thousand idle connections
//! cost ten thousand fds and some buffer bytes — not ten thousand
//! threads.
//!
//! Each connection walks the classic state machine
//!
//! ```text
//!   ReadHeader → ReadBody → Execute → WriteResponse
//!        ^                               |
//!        +------------- next frame ------+
//! ```
//!
//! driven by the same total decoders the threaded path uses
//! ([`crate::frame`], [`crate::proto`]). Because input is parsed out of
//! an accumulation buffer, the protocol is naturally **pipelined**: a
//! burst of `W` tagged request frames is executed back-to-back and the
//! `W` tagged responses are staged into one write buffer — no
//! per-request round-trip, no reordering hazard (each response carries
//! its request's `seq`).
//!
//! Operational behaviour is contractually identical to the threaded
//! backend, verified by running the same integration suite over both:
//!
//! - **Counted admission** — at most [`crate::ServerConfig::max_conns`]
//!   connections; the next accept is answered `BUSY` (tag 0) and
//!   closed.
//! - **Idle timeout** — wall-clock, enforced by a coarse timer wheel
//!   instead of stepped reads; an idle connection is closed and counted
//!   once.
//! - **Malformed input** — counts, best-effort `ERR`, close. Nothing on
//!   the wire can panic the reactor.
//! - **Backpressure** — a peer that writes requests but never reads
//!   responses stops being parsed (and read) once
//!   [`WRITE_BACKPRESSURE`] bytes of responses are queued; parsing
//!   resumes as its buffer drains.
//! - **Buffer hygiene** — after a burst, read/write buffers above
//!   [`crate::ServerConfig::buffer_high_water`] are shrunk back, so one
//!   max-size frame does not pin its worst-case allocation per
//!   connection forever.
//! - **Graceful shutdown** — stop accepting, finish every started
//!   frame, flush every staged response, then close; bounded by a drain
//!   deadline.

use crate::conn::malformed_class;
use crate::event::{new_backend, BackendKind, Event, EventBackend, Interest, Waker};
use crate::frame::{self, FrameError, HEADER_LEN, SEQ_UNSOLICITED};
use crate::proto::{Request, Status};
use crate::service::Service;
use crate::ServerConfig;
use cc_telemetry::trace::{sop, tier as trace_tier, AnomalyKind, Span};
use cc_util::Slab;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Registration token of the accept listener.
const TOKEN_LISTENER: usize = usize::MAX;
/// Registration token of the shutdown waker.
const TOKEN_WAKER: usize = usize::MAX - 1;
/// Socket read granularity: bytes appended to the accumulation buffer
/// per `read` call.
const READ_CHUNK: usize = 16 << 10;
/// Accepts drained per listener wake-up, so one accept storm cannot
/// starve connection I/O.
const ACCEPT_BATCH: usize = 64;
/// Staged-response bytes beyond which a connection stops being read
/// and parsed until the peer drains its responses.
pub(crate) const WRITE_BACKPRESSURE: usize = 1 << 20;
/// Hard cap on how long a drain-shutdown waits for started frames.
const DRAIN_CAP: Duration = Duration::from_secs(5);
/// The reactor's telemetry stripe (the evented service has stripes for
/// the reactor and for admission).
const STRIPE: usize = 0;

/// Where a connection is in its request cycle (observable in tests;
/// the transitions are the documented state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Waiting for (the rest of) an 8-byte frame header.
    ReadHeader,
    /// Header complete; waiting for the declared body bytes.
    ReadBody,
    /// Responses staged and not yet fully written.
    WriteResponse,
}

/// Why a connection is being torn down (close-side accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CloseReason {
    /// Peer closed cleanly between frames.
    Peer,
    /// Idle deadline expired.
    Idle,
    /// Server shutting down.
    Shutdown,
    /// Framing or protocol violation.
    Malformed,
    /// Transport error.
    Error,
}

/// The socket-independent half of a connection: buffers, the parse
/// cursor, and the state machine. Split out so the frame-walking logic
/// is unit-testable without a live socket.
pub(crate) struct Wire {
    /// Accumulated unparsed input; `rpos..len` is live.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Staged responses; `wpos..len` is unsent.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Requests executed on this connection.
    requests: u64,
    state: ConnState,
}

impl Wire {
    pub(crate) fn new() -> Wire {
        Wire {
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            requests: 0,
            state: ConnState::ReadHeader,
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn state(&self) -> ConnState {
        self.state
    }

    pub(crate) fn requests(&self) -> u64 {
        self.requests
    }

    /// Response bytes staged and not yet written to the socket.
    pub(crate) fn pending_out(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Whether unparsed input remains (after [`Wire::drain_requests`],
    /// anything left is a partial frame — or frames parked behind
    /// backpressure).
    pub(crate) fn has_unparsed(&self) -> bool {
        self.rpos < self.rbuf.len()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn read_buf_capacity(&self) -> usize {
        self.rbuf.capacity()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn write_buf_capacity(&self) -> usize {
        self.wbuf.capacity()
    }

    /// Append raw bytes as if read from the socket (tests and the
    /// socket read path both land here).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn ingest(&mut self, bytes: &[u8]) {
        self.rbuf.extend_from_slice(bytes);
    }

    /// Reserve `READ_CHUNK` spare bytes and return the writable tail
    /// for a socket read; pair with [`Wire::commit`].
    fn read_tail(&mut self) -> &mut [u8] {
        let old = self.rbuf.len();
        self.rbuf.resize(old + READ_CHUNK, 0);
        &mut self.rbuf[old..]
    }

    /// Keep `n` bytes of the tail handed out by [`Wire::read_tail`].
    fn commit(&mut self, n: usize) {
        let len = self.rbuf.len();
        self.rbuf.truncate(len - READ_CHUNK + n);
    }

    /// Parse and execute every complete frame currently buffered,
    /// staging tagged responses. Stops early under write backpressure.
    /// Returns the close reason when the stream is unrecoverable
    /// (malformed input) — the staged `ERR` still flushes first.
    pub(crate) fn drain_requests(
        &mut self,
        service: &Service,
        cfg: &ServerConfig,
        conn_id: u64,
        scratch: &mut Vec<u8>,
    ) -> Option<CloseReason> {
        let fail = loop {
            if self.pending_out() > WRITE_BACKPRESSURE {
                break None;
            }
            let parsed = match frame::parse_frame(&self.rbuf[self.rpos..], cfg.max_frame_bytes) {
                Ok(Some(p)) => p,
                Ok(None) => break None,
                Err(FrameError::Oversized { .. }) => {
                    // The header (and so the tag) is visible whenever
                    // at least 8 bytes arrived; echo it if we can.
                    let avail = &self.rbuf[self.rpos..];
                    let seq = if avail.len() >= HEADER_LEN {
                        u32::from_le_bytes(avail[4..8].try_into().expect("checked length"))
                    } else {
                        SEQ_UNSOLICITED
                    };
                    service.malformed(STRIPE, conn_id, malformed_class::OVERSIZED);
                    self.stage_err(seq, "frame exceeds size limit");
                    break Some(CloseReason::Malformed);
                }
                Err(_) => unreachable!("parse_frame only fails Oversized"),
            };
            let body = &self.rbuf[self.rpos + parsed.body.start..self.rpos + parsed.body.end];
            match Request::decode(body) {
                Ok(req) => {
                    let op = req.opcode();
                    let t0 = Instant::now();
                    let (status, tctx) = service.handle(STRIPE, conn_id, &req, scratch);
                    let f0 = tctx.sampled().then(Instant::now);
                    frame::append_frame(&mut self.wbuf, parsed.seq, 1 + scratch.len(), |b| {
                        b.push(status as u8);
                        b.extend_from_slice(scratch);
                    });
                    if let (Some(tr), Some(f0)) = (service.tracer(), f0) {
                        // Reply flush on this backend is the staging of
                        // the tagged frame; the socket write happens
                        // asynchronously when the peer is writable.
                        tr.record(
                            STRIPE,
                            &Span {
                                trace_id: tctx.trace_id,
                                span_id: tr.alloc_span(),
                                parent: tctx.parent_span,
                                op: sop::REPLY_FLUSH,
                                tier: trace_tier::NONE,
                                codec: op as u8,
                                status: status as u8,
                                start_ns: tr.now_ns(f0),
                                queue_ns: 0,
                                service_ns: f0.elapsed().as_nanos() as u64,
                                arg: (1 + scratch.len()) as u64,
                            },
                        );
                    }
                    service.record_latency(op, t0.elapsed().as_nanos() as u64, tctx.trace_id);
                    self.requests += 1;
                    self.rpos += parsed.consumed;
                }
                Err(e) => {
                    service.malformed(STRIPE, conn_id, malformed_class::UNDECODABLE);
                    self.stage_err(parsed.seq, &e.to_string());
                    self.rpos += parsed.consumed;
                    break Some(CloseReason::Malformed);
                }
            }
        };
        self.update_state();
        fail
    }

    /// The peer half-closed its stream. A partial frame left behind is
    /// a truncation (counted, answered `ERR`); complete silence between
    /// frames is a clean close.
    pub(crate) fn note_eof(&mut self, service: &Service, conn_id: u64) -> CloseReason {
        if self.has_unparsed() {
            service.malformed(STRIPE, conn_id, malformed_class::TRUNCATED);
            self.stage_err(SEQ_UNSOLICITED, "truncated frame");
            CloseReason::Malformed
        } else {
            CloseReason::Peer
        }
    }

    fn stage_err(&mut self, seq: u32, msg: &str) {
        frame::append_frame(&mut self.wbuf, seq, 1 + msg.len(), |b| {
            b.push(Status::Err as u8);
            b.extend_from_slice(msg.as_bytes());
        });
        self.update_state();
    }

    fn update_state(&mut self) {
        let unparsed = self.rbuf.len() - self.rpos;
        self.state = if unparsed >= HEADER_LEN {
            // A complete header is buffered: we are mid-body (either
            // waiting for bytes or parked behind backpressure).
            ConnState::ReadBody
        } else if unparsed > 0 {
            ConnState::ReadHeader
        } else if self.pending_out() > 0 {
            ConnState::WriteResponse
        } else {
            ConnState::ReadHeader
        };
    }

    /// Compact the consumed read prefix and shrink over-grown buffers
    /// back to the configured high-water mark once they empty.
    pub(crate) fn housekeeping(&mut self, high_water: usize) {
        if self.rpos == self.rbuf.len() {
            self.rbuf.clear();
            self.rpos = 0;
        } else if self.rpos > 0 {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
        frame::shrink_to_high_water(&mut self.rbuf, high_water);
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
            frame::shrink_to_high_water(&mut self.wbuf, high_water);
        }
    }

    /// Flush staged responses to `w` until done or `WouldBlock`.
    /// `Ok(true)` means everything staged has been written.
    fn flush_to(&mut self, w: &mut impl Write) -> std::io::Result<bool> {
        while self.wpos < self.wbuf.len() {
            match w.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

/// One live connection owned by the reactor.
struct Conn {
    stream: TcpStream,
    conn_id: u64,
    wire: Wire,
    interest: Interest,
    last_active: Instant,
    /// Set when the connection must close as soon as its staged output
    /// flushes.
    close_after_flush: Option<CloseReason>,
    /// When this connection was parked behind write backpressure
    /// (parsing paused); reset on any flush progress. Tracing only.
    parked_since: Option<Instant>,
    /// Pending output observed when the park episode started (or last
    /// made progress) — the stall sweep compares against it.
    parked_pending: usize,
    /// A backpressure-stall anomaly already fired for this episode.
    stall_reported: bool,
}

/// The readiness loop. Owns the listener, the registered connections,
/// and the timer wheel; runs on one dedicated thread.
pub(crate) struct Reactor {
    backend: Box<dyn EventBackend>,
    listener: Option<TcpListener>,
    waker: Waker,
    service: Arc<Service>,
    cfg: Arc<ServerConfig>,
    shutdown: Arc<AtomicBool>,
    conns: Slab<Conn>,
    wheel: TimerWheel,
    scratch: Vec<u8>,
    events: Vec<Event>,
    draining: bool,
    drain_deadline: Instant,
}

impl Reactor {
    /// Build the reactor: nonblocking listener + waker registered with
    /// the chosen readiness backend. Returns the waker handle the
    /// server uses to interrupt [`Reactor::run`] at shutdown.
    pub(crate) fn new(
        kind: BackendKind,
        listener: TcpListener,
        service: Arc<Service>,
        cfg: Arc<ServerConfig>,
        shutdown: Arc<AtomicBool>,
    ) -> std::io::Result<(Reactor, crate::event::WakeHandle)> {
        listener.set_nonblocking(true)?;
        let mut backend = new_backend(kind)?;
        backend.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        let waker = Waker::new()?;
        backend.register(waker.reader_fd(), TOKEN_WAKER, Interest::READ)?;
        let handle = waker.handle()?;
        let now = Instant::now();
        let wheel = TimerWheel::new(cfg.idle_timeout, now);
        Ok((
            Reactor {
                backend,
                listener: Some(listener),
                waker,
                service,
                cfg,
                shutdown,
                conns: Slab::new(),
                wheel,
                scratch: Vec::new(),
                events: Vec::with_capacity(256),
                draining: false,
                drain_deadline: now,
            },
            handle,
        ))
    }

    /// Drive the loop until shutdown completes its drain.
    pub(crate) fn run(mut self) {
        let mut expired: Vec<(usize, u64)> = Vec::new();
        loop {
            let timeout = self.wheel.granularity.min(Duration::from_millis(100));
            let mut events = std::mem::take(&mut self.events);
            if let Err(e) = self.backend.poll(&mut events, Some(timeout)) {
                // A failing poll leaves no readiness source at all;
                // treat it as fatal and drain out.
                debug_assert!(false, "event backend poll failed: {e}");
                self.shutdown.store(true, Ordering::Relaxed);
            }
            let mut accept_ready = false;
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => accept_ready = true,
                    TOKEN_WAKER => self.waker.drain(),
                    token => self.conn_ready(token, ev),
                }
            }
            events.clear();
            self.events = events;
            // Accept after serving existing connections: a token freed
            // and reused this batch must not see the old fd's events.
            if accept_ready && !self.draining {
                self.accept_ready();
            }

            let now = Instant::now();
            if !self.draining && self.shutdown.load(Ordering::Relaxed) {
                self.begin_drain(now);
            }
            self.tick_timers(now, &mut expired);
            self.sweep_stalled_parks(now);
            if self.draining {
                if self.conns.is_empty() {
                    break;
                }
                if now >= self.drain_deadline {
                    let tokens: Vec<usize> = self.conns.iter().map(|(t, _)| t).collect();
                    for t in tokens {
                        self.close(t, CloseReason::Shutdown);
                    }
                    break;
                }
            }
        }
    }

    /// Accept every pending connection (bounded per wake-up), applying
    /// counted admission.
    fn accept_ready(&mut self) {
        for _ in 0..ACCEPT_BATCH {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.conns.len() >= self.cfg.max_conns {
                        self.reject_busy(stream);
                        continue;
                    }
                    self.admit(stream);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Over-admission answer: `BUSY` (tag 0), then close. The socket
    /// was just accepted, so the best-effort write into an empty send
    /// buffer does not block the loop.
    fn reject_busy(&mut self, mut stream: TcpStream) {
        let conn_id = self.service.next_conn_id();
        self.service.busy_rejected(STRIPE, conn_id);
        let _ = stream.set_nonblocking(true);
        let _ = frame::write_frame(&mut stream, SEQ_UNSOLICITED, &[Status::Busy as u8]);
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }

    fn admit(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let conn_id = self.service.next_conn_id();
        let now = Instant::now();
        let token = self.conns.insert(Conn {
            stream,
            conn_id,
            wire: Wire::new(),
            interest: Interest::READ,
            last_active: now,
            close_after_flush: None,
            parked_since: None,
            parked_pending: 0,
            stall_reported: false,
        });
        let fd = self.conns[token].stream.as_raw_fd();
        if self.backend.register(fd, token, Interest::READ).is_err() {
            // Registration failure: the connection was never served.
            self.conns.remove(token);
            return;
        }
        self.service.conn_opened(STRIPE, conn_id);
        self.wheel
            .schedule(now + self.cfg.idle_timeout, token, conn_id);
    }

    /// Dispatch readiness on a connection token. Stale tokens (closed
    /// earlier in this batch) are skipped.
    fn conn_ready(&mut self, token: usize, ev: Event) {
        if !self.conns.contains(token) {
            return;
        }
        if ev.error {
            self.close(token, CloseReason::Error);
            return;
        }
        let mut eof = false;
        if ev.readable {
            let conn = &mut self.conns[token];
            // Don't grow the buffer for a peer we've stopped serving.
            if conn.close_after_flush.is_none() {
                conn.last_active = Instant::now();
                loop {
                    let tail = conn.wire.read_tail();
                    match conn.stream.read(tail) {
                        Ok(0) => {
                            conn.wire.commit(0);
                            eof = true;
                            break;
                        }
                        Ok(n) => {
                            conn.wire.commit(n);
                            if conn.wire.pending_out() > WRITE_BACKPRESSURE {
                                break;
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            conn.wire.commit(0);
                            break;
                        }
                        Err(e) if e.kind() == ErrorKind::Interrupted => {
                            conn.wire.commit(0);
                        }
                        Err(_) => {
                            conn.wire.commit(0);
                            self.close(token, CloseReason::Error);
                            return;
                        }
                    }
                }
            }
        }
        self.advance(token, eof);
    }

    /// Execute buffered frames, flush staged responses, settle interest
    /// and close state. The one place every connection event funnels
    /// through.
    fn advance(&mut self, token: usize, eof: bool) {
        let Reactor {
            conns,
            service,
            cfg,
            scratch,
            ..
        } = self;
        let Some(conn) = conns.get_mut(token) else {
            return;
        };

        if conn.close_after_flush.is_none() {
            if let Some(reason) = conn
                .wire
                .drain_requests(service, cfg, conn.conn_id, scratch)
            {
                conn.close_after_flush = Some(reason);
            } else if eof {
                conn.close_after_flush = Some(conn.wire.note_eof(service, conn.conn_id));
            } else if self.draining && !conn.wire.has_unparsed() {
                // Between frames during a drain: nothing started, done.
                conn.close_after_flush = Some(CloseReason::Shutdown);
            }
        }

        // Flush, then re-drain: flushing can drop pending output back
        // below the backpressure cap while complete frames sit parked
        // in the read buffer. The peer may have nothing left to send,
        // so no further readable event will arrive — parsing must
        // resume here or the connection stalls. Loop until parsing
        // makes no progress (partial frame) or the cap is hit again.
        let mut flushed;
        loop {
            flushed = match conn.wire.flush_to(&mut conn.stream) {
                Ok(done) => done,
                Err(_) => {
                    self.close(token, CloseReason::Error);
                    return;
                }
            };
            if conn.close_after_flush.is_some()
                || !conn.wire.has_unparsed()
                || conn.wire.pending_out() > WRITE_BACKPRESSURE
            {
                break;
            }
            let before = conn.wire.requests();
            if let Some(reason) = conn
                .wire
                .drain_requests(service, cfg, conn.conn_id, scratch)
            {
                conn.close_after_flush = Some(reason);
            } else if conn.wire.requests() == before {
                break;
            }
        }
        conn.wire.housekeeping(cfg.buffer_high_water);

        if flushed {
            if let Some(reason) = conn.close_after_flush {
                self.close(token, reason);
                return;
            }
        }

        // Park/unpark bookkeeping (tracing only): a connection is parked
        // while backpressure pauses its parsing. The park itself becomes
        // a span when it ends; a park that stops making progress is the
        // stall sweep's business (see `sweep_stalled_parks`).
        if let Some(tr) = service.tracer() {
            let parked =
                conn.close_after_flush.is_none() && conn.wire.pending_out() > WRITE_BACKPRESSURE;
            match (parked, conn.parked_since) {
                (true, None) => {
                    conn.parked_since = Some(Instant::now());
                    conn.parked_pending = conn.wire.pending_out();
                    conn.stall_reported = false;
                }
                (false, Some(since)) => {
                    tr.record(
                        STRIPE,
                        &Span {
                            trace_id: 0,
                            span_id: tr.alloc_span(),
                            parent: 0,
                            op: sop::PARK,
                            tier: trace_tier::NONE,
                            codec: 0,
                            status: 0,
                            start_ns: tr.now_ns(since),
                            queue_ns: 0,
                            service_ns: since.elapsed().as_nanos() as u64,
                            arg: conn.conn_id,
                        },
                    );
                    conn.parked_since = None;
                    conn.stall_reported = false;
                }
                _ => {}
            }
        }

        // Interest: writable while output is pending; readable unless
        // the peer is parked behind backpressure or being closed.
        let want = Interest {
            readable: conn.close_after_flush.is_none()
                && conn.wire.pending_out() <= WRITE_BACKPRESSURE,
            writable: !flushed,
        };
        if want != conn.interest {
            let fd = conn.stream.as_raw_fd();
            conn.interest = want;
            if self.backend.reregister(fd, token, want).is_err() {
                self.close(token, CloseReason::Error);
            }
        }
    }

    fn close(&mut self, token: usize, reason: CloseReason) {
        let conn = self.conns.remove(token);
        let _ = self.backend.deregister(conn.stream.as_raw_fd());
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        self.service.conn_closed(
            STRIPE,
            conn.conn_id,
            conn.wire.requests(),
            reason == CloseReason::Idle,
        );
    }

    /// Fire a backpressure-stall anomaly for any parked connection whose
    /// staged output has made no flush progress for the tracer's stall
    /// window — a peer that pipelines requests but stopped reading
    /// responses. Reported once per park episode; the poll timeout
    /// bounds detection latency to ~100 ms past the window.
    fn sweep_stalled_parks(&mut self, now: Instant) {
        let Some(tr) = self.service.tracer().cloned() else {
            return;
        };
        let stall = tr.stall_after();
        for (_, conn) in self.conns.iter_mut() {
            let Some(since) = conn.parked_since else {
                continue;
            };
            let pending = conn.wire.pending_out();
            if pending < conn.parked_pending {
                // The peer drained something: restart the window.
                conn.parked_since = Some(now);
                conn.parked_pending = pending;
                conn.stall_reported = false;
            } else if !conn.stall_reported && now.saturating_duration_since(since) >= stall {
                tr.anomaly(
                    AnomalyKind::BackpressureStall,
                    0,
                    conn.conn_id,
                    pending as u64,
                );
                conn.stall_reported = true;
            }
        }
    }

    /// Stop accepting and put every quiescent connection on the way
    /// out; started frames get until the drain deadline.
    fn begin_drain(&mut self, now: Instant) {
        self.draining = true;
        self.drain_deadline = now + self.cfg.idle_timeout.min(DRAIN_CAP);
        if let Some(listener) = self.listener.take() {
            let _ = self.backend.deregister(listener.as_raw_fd());
        }
        let tokens: Vec<usize> = self.conns.iter().map(|(t, _)| t).collect();
        for token in tokens {
            self.advance(token, false);
        }
    }

    /// Advance the timer wheel; expire idle connections, reschedule the
    /// rest (lazy deadlines: activity only bumps `last_active`).
    fn tick_timers(&mut self, now: Instant, expired: &mut Vec<(usize, u64)>) {
        expired.clear();
        self.wheel.advance(now, expired);
        for &(token, conn_id) in expired.iter() {
            let Some(conn) = self.conns.get(token) else {
                continue;
            };
            if conn.conn_id != conn_id {
                continue; // token reused since this entry was scheduled
            }
            let deadline = conn.last_active + self.cfg.idle_timeout;
            if now >= deadline {
                self.close(token, CloseReason::Idle);
            } else {
                self.wheel.schedule(deadline, token, conn_id);
            }
        }
    }
}

/// A coarse hashed timing wheel. Entries are `(token, conn_id)` pairs;
/// expiry is *lazy* — the reactor revalidates the real deadline when a
/// slot fires and reschedules if the connection was active since. This
/// replaces the threaded backend's 20 ms stepped reads: cost is O(1)
/// per scheduled timer, independent of connection count.
pub(crate) struct TimerWheel {
    slots: Vec<Vec<(usize, u64)>>,
    granularity: Duration,
    cursor: usize,
    cursor_time: Instant,
}

impl TimerWheel {
    /// Size the wheel to cover `span` (the idle timeout) with 16–64
    /// ticks of at least 1 ms and at most 250 ms.
    pub(crate) fn new(span: Duration, now: Instant) -> TimerWheel {
        let granularity = (span / 16)
            .max(Duration::from_millis(1))
            .min(Duration::from_millis(250));
        let ticks = (span.as_nanos() / granularity.as_nanos().max(1)) as usize + 2;
        TimerWheel {
            slots: vec![Vec::new(); ticks],
            granularity,
            cursor: 0,
            cursor_time: now,
        }
    }

    /// Schedule `(token, id)` to fire at (or just after) `deadline`.
    pub(crate) fn schedule(&mut self, deadline: Instant, token: usize, id: u64) {
        let delta = deadline.saturating_duration_since(self.cursor_time);
        // Round up and land one tick late rather than early: lazy
        // revalidation tolerates late, never early-forgets.
        let ticks = (delta.as_nanos() / self.granularity.as_nanos().max(1)) as usize + 1;
        let ticks = ticks.min(self.slots.len() - 1).max(1);
        let slot = (self.cursor + ticks) % self.slots.len();
        self.slots[slot].push((token, id));
    }

    /// Advance to `now`, draining every slot whose time has passed.
    pub(crate) fn advance(&mut self, now: Instant, out: &mut Vec<(usize, u64)>) {
        while self.cursor_time + self.granularity <= now {
            self.cursor_time += self.granularity;
            self.cursor = (self.cursor + 1) % self.slots.len();
            out.append(&mut self.slots[self.cursor]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_core::store::{CompressedStore, StoreConfig};
    use cc_server_test_helpers::*;

    /// In-crate test helpers (kept in a module so unit tests read
    /// cleanly).
    mod cc_server_test_helpers {
        use super::*;

        pub fn service() -> Service {
            let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(8 << 20)));
            Service::new(store, 1)
        }

        pub fn put_frame(seq: u32, key: u64, page: &[u8]) -> Vec<u8> {
            let mut body = Vec::new();
            Request::Put { key, page }.encode(&mut body);
            let mut wire = Vec::new();
            frame::write_frame(&mut wire, seq, &body).unwrap();
            wire
        }

        pub fn get_frame(seq: u32, key: u64) -> Vec<u8> {
            let mut body = Vec::new();
            Request::Get { key }.encode(&mut body);
            let mut wire = Vec::new();
            frame::write_frame(&mut wire, seq, &body).unwrap();
            wire
        }

        /// Parse every staged response out of a wire's write buffer.
        pub fn staged_responses(wire_bytes: &[u8]) -> Vec<(u32, Status, Vec<u8>)> {
            let mut out = Vec::new();
            let mut pos = 0;
            while let Some(p) = frame::parse_frame(&wire_bytes[pos..], 1 << 20).unwrap() {
                let body = &wire_bytes[pos + p.body.start..pos + p.body.end];
                let resp = crate::proto::Response::decode(body).unwrap();
                out.push((p.seq, resp.status, resp.payload.to_vec()));
                pos += p.consumed;
            }
            assert_eq!(pos, wire_bytes.len(), "trailing junk in write buffer");
            out
        }
    }

    fn test_cfg() -> ServerConfig {
        ServerConfig::default()
    }

    /// The per-connection state machine walks
    /// ReadHeader → ReadBody → Execute → WriteResponse as bytes arrive,
    /// at every byte-boundary split.
    #[test]
    fn state_machine_transitions_byte_by_byte() {
        let service = service();
        let cfg = test_cfg();
        let mut scratch = Vec::new();
        let page = vec![0xAB; 512];
        let burst = put_frame(1, 7, &page);

        let mut w = Wire::new();
        assert_eq!(w.state(), ConnState::ReadHeader);
        for (i, &b) in burst.iter().enumerate() {
            w.ingest(&[b]);
            assert!(w.drain_requests(&service, &cfg, 0, &mut scratch).is_none());
            let expect = if i + 1 < HEADER_LEN {
                ConnState::ReadHeader
            } else if i + 1 < burst.len() {
                ConnState::ReadBody
            } else {
                ConnState::WriteResponse
            };
            assert_eq!(w.state(), expect, "after byte {i}");
        }
        assert_eq!(w.requests(), 1);
        let resps = staged_responses(&w.wbuf);
        assert_eq!(resps, vec![(1, Status::Ok, Vec::new())]);
    }

    /// A pipelined burst executes back-to-back with tags echoed in
    /// order, one staged write buffer for the whole window.
    #[test]
    fn pipelined_burst_executes_all_tags() {
        let service = service();
        let cfg = test_cfg();
        let mut scratch = Vec::new();
        let page = vec![0x5A; 256];

        let mut burst = Vec::new();
        for seq in 1..=8u32 {
            burst.extend_from_slice(&put_frame(seq, seq as u64, &page));
        }
        for seq in 9..=16u32 {
            burst.extend_from_slice(&get_frame(seq, (seq - 8) as u64));
        }
        let mut w = Wire::new();
        w.ingest(&burst);
        assert!(w.drain_requests(&service, &cfg, 0, &mut scratch).is_none());
        assert_eq!(w.requests(), 16);
        let resps = staged_responses(&w.wbuf);
        assert_eq!(resps.len(), 16);
        for (i, (seq, status, payload)) in resps.iter().enumerate() {
            assert_eq!(*seq, i as u32 + 1);
            assert_eq!(*status, Status::Ok);
            if i >= 8 {
                assert_eq!(payload, &page, "GET seq {seq} returned wrong bytes");
            }
        }
    }

    /// Satellite regression: after a max-size frame passes through, the
    /// retained buffers shrink back to the high-water mark — a burst of
    /// large PUTs must not pin worst-case memory per connection.
    #[test]
    fn buffers_shrink_to_high_water_after_large_frame() {
        let service = service();
        let cfg = test_cfg();
        let hw = 16 << 10;
        let mut scratch = Vec::new();
        // A page well above the high-water mark (and its GET response).
        let page = vec![0xCD; 256 << 10];

        let mut w = Wire::new();
        w.ingest(&put_frame(1, 1, &page));
        w.ingest(&get_frame(2, 1));
        assert!(w.drain_requests(&service, &cfg, 0, &mut scratch).is_none());
        assert!(
            w.read_buf_capacity() > hw,
            "test needs the burst to out-grow the mark"
        );
        // Responses drain (as if the socket accepted everything)...
        let mut sink = Vec::new();
        assert!(w.flush_to(&mut sink).unwrap());
        let resps = staged_responses(&sink);
        assert_eq!(resps[1].2, page, "GET must round-trip before shrink");
        // ...and housekeeping returns both buffers to the mark.
        w.housekeeping(hw);
        assert!(
            w.read_buf_capacity() <= hw,
            "read buffer capacity {} stuck above high-water {hw}",
            w.read_buf_capacity()
        );
        assert!(
            w.write_buf_capacity() <= hw,
            "write buffer capacity {} stuck above high-water {hw}",
            w.write_buf_capacity()
        );
        // And the connection still serves afterwards.
        w.ingest(&get_frame(3, 1));
        assert!(w.drain_requests(&service, &cfg, 0, &mut scratch).is_none());
        assert_eq!(w.requests(), 3);
    }

    /// Backpressure: a peer that pipelines requests but never reads
    /// stops being parsed once the staged output crosses the cap, and
    /// resumes (exactly once per frame) after draining.
    #[test]
    fn write_backpressure_pauses_parsing() {
        let service = service();
        let cfg = test_cfg();
        let mut scratch = Vec::new();
        let page = vec![0x11; 128 << 10];
        let mut w = Wire::new();
        w.ingest(&put_frame(1, 1, &page));
        assert!(w.drain_requests(&service, &cfg, 0, &mut scratch).is_none());
        // Stage GET responses until the cap trips.
        let mut seq = 2u32;
        while w.pending_out() <= WRITE_BACKPRESSURE {
            w.ingest(&get_frame(seq, 1));
            assert!(w.drain_requests(&service, &cfg, 0, &mut scratch).is_none());
            seq += 1;
        }
        let executed = w.requests();
        // More arrivals are buffered, not executed.
        w.ingest(&get_frame(seq, 1));
        w.ingest(&get_frame(seq + 1, 1));
        assert!(w.drain_requests(&service, &cfg, 0, &mut scratch).is_none());
        assert_eq!(w.requests(), executed, "parsed past the backpressure cap");
        assert!(w.has_unparsed());
        // Drain the socket side; parsing resumes and catches up.
        let mut sink = Vec::new();
        assert!(w.flush_to(&mut sink).unwrap());
        w.housekeeping(cfg.buffer_high_water);
        assert!(w.drain_requests(&service, &cfg, 0, &mut scratch).is_none());
        assert_eq!(w.requests(), executed + 2);
        assert!(!w.has_unparsed());
    }

    /// Malformed frames stage a tagged ERR and report an unrecoverable
    /// close; EOF mid-frame is a truncation, between frames a clean
    /// close.
    #[test]
    fn malformed_and_eof_classification() {
        let service = service();
        let cfg = test_cfg();
        let mut scratch = Vec::new();

        // Undecodable body: tag echoed on the ERR.
        let mut w = Wire::new();
        let mut junk = Vec::new();
        frame::write_frame(&mut junk, 42, &[99]).unwrap();
        w.ingest(&junk);
        assert_eq!(
            w.drain_requests(&service, &cfg, 0, &mut scratch),
            Some(CloseReason::Malformed)
        );
        let resps = staged_responses(&w.wbuf);
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].0, 42);
        assert_eq!(resps[0].1, Status::Err);

        // Oversized prefix.
        let mut w = Wire::new();
        w.ingest(&(u32::MAX).to_le_bytes());
        w.ingest(&7u32.to_le_bytes());
        assert_eq!(
            w.drain_requests(&service, &cfg, 0, &mut scratch),
            Some(CloseReason::Malformed)
        );

        // EOF with half a header: truncation.
        let mut w = Wire::new();
        w.ingest(&[1, 2, 3]);
        assert!(w.drain_requests(&service, &cfg, 0, &mut scratch).is_none());
        assert_eq!(w.note_eof(&service, 0), CloseReason::Malformed);

        // EOF between frames: clean close.
        let mut w = Wire::new();
        w.ingest(&get_frame(1, 5));
        assert!(w.drain_requests(&service, &cfg, 0, &mut scratch).is_none());
        assert_eq!(w.note_eof(&service, 0), CloseReason::Peer);

        let snap = service.snapshot();
        assert_eq!(snap.counter("malformed_frames"), Some(3));
    }

    /// The timer wheel fires entries at (or just after) their deadline,
    /// never early, across reschedules.
    #[test]
    fn timer_wheel_fires_late_never_early() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(160), t0);
        let mut out = Vec::new();

        wheel.schedule(t0 + Duration::from_millis(50), 1, 11);
        wheel.schedule(t0 + Duration::from_millis(120), 2, 22);

        // Before the first deadline: nothing fires.
        wheel.advance(t0 + Duration::from_millis(30), &mut out);
        assert!(out.is_empty());
        // Past the first (+ a full tick of slack for lazy rounding).
        wheel.advance(t0 + Duration::from_millis(80), &mut out);
        assert_eq!(out, vec![(1, 11)]);
        out.clear();
        wheel.advance(t0 + Duration::from_millis(160), &mut out);
        assert_eq!(out, vec![(2, 22)]);
    }
}
