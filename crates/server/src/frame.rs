//! Length-prefixed frame I/O.
//!
//! A frame is a little-endian `u32` body length followed by the body.
//! The length prefix is validated against a configurable ceiling before
//! any body allocation, so a hostile or corrupted prefix cannot make the
//! server reserve gigabytes — it is reported as [`FrameError::Oversized`]
//! and the connection is torn down.

use std::io::{ErrorKind, Read, Write};

/// Bytes of length prefix preceding every frame body.
pub const LEN_PREFIX: usize = 4;

/// Default ceiling on a frame body (requests and responses): a 4 KiB
/// page plus headers fits with room to spare, and STATS text stays far
/// below it.
pub const DEFAULT_MAX_FRAME: usize = 4 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Clean EOF on a frame boundary — the peer closed the connection.
    Closed,
    /// EOF in the middle of a frame: a truncated header or body.
    Truncated {
        /// Bytes of the frame that did arrive.
        got: usize,
        /// Bytes the frame needed (prefix + declared body).
        need: usize,
    },
    /// The length prefix declares a body over the ceiling.
    Oversized {
        /// Declared body length.
        len: usize,
        /// Configured ceiling.
        max: usize,
    },
    /// Transport error.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated { got, need } => {
                write!(f, "truncated frame: got {got} of {need} bytes")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write `body` as one frame and flush the transport.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Read one frame body into `buf` (cleared and resized), blocking until
/// complete. Used by the client; the server's connection loop does its
/// own stepped reads so idle timeouts and shutdown stay responsive.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>, max: usize) -> Result<(), FrameError> {
    let mut prefix = [0u8; LEN_PREFIX];
    read_exact_or(r, &mut prefix, 0, LEN_PREFIX)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max {
        return Err(FrameError::Oversized { len, max });
    }
    buf.clear();
    buf.resize(len, 0);
    read_exact_or(r, buf, LEN_PREFIX, LEN_PREFIX + len)
}

/// `read_exact` that distinguishes a clean close (EOF before the first
/// byte of the frame) from a truncation (EOF with the frame underway).
fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    already: usize,
    need: usize,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if already == 0 && filled == 0 {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Truncated {
                        got: already + filled,
                        need,
                    })
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_over_a_pipe() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor = &wire[..];
        let mut buf = Vec::new();
        read_frame(&mut cursor, &mut buf, 1024).unwrap();
        assert_eq!(buf, b"hello");
        read_frame(&mut cursor, &mut buf, 1024).unwrap();
        assert!(buf.is_empty());
        assert!(matches!(
            read_frame(&mut cursor, &mut buf, 1024),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_prefix_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = &wire[..];
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut cursor, &mut buf, 1024),
            Err(FrameError::Oversized { max: 1024, .. })
        ));
        assert_eq!(buf.capacity(), 0, "no body allocation for a bad prefix");
    }

    #[test]
    fn truncation_is_distinguished_from_close() {
        // Header cut short.
        let mut cursor = &[1u8, 0][..];
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut cursor, &mut buf, 1024),
            Err(FrameError::Truncated { got: 2, need: 4 })
        ));
        // Body cut short.
        let mut wire = Vec::new();
        wire.extend_from_slice(&8u32.to_le_bytes());
        wire.extend_from_slice(b"abc");
        let mut cursor = &wire[..];
        assert!(matches!(
            read_frame(&mut cursor, &mut buf, 1024),
            Err(FrameError::Truncated { got: 7, need: 12 })
        ));
    }
}
