//! Length-prefixed, sequence-tagged frame I/O.
//!
//! A frame is an 8-byte header — a little-endian `u32` body length
//! followed by a little-endian `u32` **sequence tag** — and then the
//! body. The tag is what makes the protocol *pipelined*: a client may
//! write many request frames before reading any response, and each
//! response frame echoes the tag of the request it answers, so
//! responses can be matched (and in principle reordered) without
//! per-request round-trips. Tag `0` is reserved for unsolicited
//! server frames (the admission-time `BUSY` answer and the `ERR`
//! ahead of a close when no request tag is known); clients allocate
//! tags from 1.
//!
//! The length prefix is validated against a configurable ceiling before
//! any body allocation, so a hostile or corrupted prefix cannot make the
//! server reserve gigabytes — it is reported as [`FrameError::Oversized`]
//! and the connection is torn down.
//!
//! Two consumption styles share the format:
//!
//! - [`read_frame`] blocks on a [`Read`] until one whole frame arrives
//!   (the client's reaper and the threaded backend's stepped reads);
//! - [`parse_frame`] inspects an in-memory byte accumulation and
//!   extracts a complete frame if one is present — the nonblocking
//!   reactor appends whatever the socket had and parses as many
//!   complete frames as arrived, however the bytes were split.

use std::io::{ErrorKind, Read, Write};
use std::ops::Range;

/// Bytes of length prefix at the start of the header.
pub const LEN_PREFIX: usize = 4;

/// Total header bytes preceding every frame body: `u32` length +
/// `u32` sequence tag.
pub const HEADER_LEN: usize = 8;

/// Sequence tag reserved for unsolicited server frames (admission
/// `BUSY`, pre-close `ERR` when no request tag was decoded).
pub const SEQ_UNSOLICITED: u32 = 0;

/// Default ceiling on a frame body (requests and responses): a 4 KiB
/// page plus headers fits with room to spare, and STATS text stays far
/// below it.
pub const DEFAULT_MAX_FRAME: usize = 4 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Clean EOF on a frame boundary — the peer closed the connection.
    Closed,
    /// EOF in the middle of a frame: a truncated header or body.
    Truncated {
        /// Bytes of the frame that did arrive.
        got: usize,
        /// Bytes the frame needed (header + declared body).
        need: usize,
    },
    /// The length prefix declares a body over the ceiling.
    Oversized {
        /// Declared body length.
        len: usize,
        /// Configured ceiling.
        max: usize,
    },
    /// Transport error.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated { got, need } => {
                write!(f, "truncated frame: got {got} of {need} bytes")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Encode the header for a `len`-byte body tagged `seq`.
#[inline]
pub fn header(len: usize, seq: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(&(len as u32).to_le_bytes());
    h[4..].copy_from_slice(&seq.to_le_bytes());
    h
}

/// Write `body` as one frame tagged `seq` and flush the transport.
pub fn write_frame(w: &mut impl Write, seq: u32, body: &[u8]) -> std::io::Result<()> {
    w.write_all(&header(body.len(), seq))?;
    w.write_all(body)?;
    w.flush()
}

/// Append `body` as one frame tagged `seq` to `out` — the reactor's
/// encode path, staging many responses in one write buffer.
pub fn append_frame(out: &mut Vec<u8>, seq: u32, body_len: usize, body: impl FnOnce(&mut Vec<u8>)) {
    let hdr_at = out.len();
    out.extend_from_slice(&header(body_len, seq));
    let body_at = out.len();
    body(out);
    let actual = out.len() - body_at;
    if actual != body_len {
        // The caller's estimate was wrong; patch the real length in.
        out[hdr_at..hdr_at + 4].copy_from_slice(&(actual as u32).to_le_bytes());
    }
}

/// Read one frame body into `buf` (cleared and resized), blocking until
/// complete, returning the frame's sequence tag. Used by the client;
/// the server's backends do nonblocking parses or stepped reads so idle
/// timeouts and shutdown stay responsive.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>, max: usize) -> Result<u32, FrameError> {
    let mut hdr = [0u8; HEADER_LEN];
    read_exact_or(r, &mut hdr, 0, HEADER_LEN)?;
    let len = u32::from_le_bytes(hdr[..4].try_into().expect("header length")) as usize;
    let seq = u32::from_le_bytes(hdr[4..].try_into().expect("header length"));
    if len > max {
        return Err(FrameError::Oversized { len, max });
    }
    buf.clear();
    buf.resize(len, 0);
    read_exact_or(r, buf, HEADER_LEN, HEADER_LEN + len)?;
    Ok(seq)
}

/// A complete frame found at the front of an accumulation buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedFrame {
    /// The frame's sequence tag.
    pub seq: u32,
    /// Where the body sits inside the buffer passed to [`parse_frame`].
    pub body: Range<usize>,
    /// Total bytes the frame occupies (header + body): advance the
    /// consumption cursor by this much.
    pub consumed: usize,
}

/// Try to extract one complete frame from the front of `buf`.
///
/// Returns `Ok(None)` when more bytes are needed (a partial header or
/// body — never an error, however the stream was split), `Ok(Some(_))`
/// when a whole frame is present, and [`FrameError::Oversized`] as soon
/// as a hostile length prefix is visible — before any body bytes are
/// waited for or allocated.
pub fn parse_frame(buf: &[u8], max: usize) -> Result<Option<ParsedFrame>, FrameError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("header length")) as usize;
    if len > max {
        return Err(FrameError::Oversized { len, max });
    }
    if buf.len() < HEADER_LEN + len {
        return Ok(None);
    }
    let seq = u32::from_le_bytes(buf[4..8].try_into().expect("header length"));
    Ok(Some(ParsedFrame {
        seq,
        body: HEADER_LEN..HEADER_LEN + len,
        consumed: HEADER_LEN + len,
    }))
}

/// Shrink a reusable buffer back to `high_water` capacity once a burst
/// has passed. A max-size frame must not pin its worst-case allocation
/// on every connection forever; after the buffer empties, capacity
/// above the high-water mark is returned to the allocator. `0`
/// disables shrinking.
pub fn shrink_to_high_water(buf: &mut Vec<u8>, high_water: usize) {
    if high_water > 0 && buf.capacity() > high_water && buf.len() <= high_water {
        buf.shrink_to(high_water);
    }
}

/// `read_exact` that distinguishes a clean close (EOF before the first
/// byte of the frame) from a truncation (EOF with the frame underway).
fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    already: usize,
    need: usize,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if already == 0 && filled == 0 {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Truncated {
                        got: already + filled,
                        need,
                    })
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_over_a_pipe() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 7, b"hello").unwrap();
        write_frame(&mut wire, 8, b"").unwrap();
        let mut cursor = &wire[..];
        let mut buf = Vec::new();
        assert_eq!(read_frame(&mut cursor, &mut buf, 1024).unwrap(), 7);
        assert_eq!(buf, b"hello");
        assert_eq!(read_frame(&mut cursor, &mut buf, 1024).unwrap(), 8);
        assert!(buf.is_empty());
        assert!(matches!(
            read_frame(&mut cursor, &mut buf, 1024),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_prefix_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&1u32.to_le_bytes());
        let mut cursor = &wire[..];
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut cursor, &mut buf, 1024),
            Err(FrameError::Oversized { max: 1024, .. })
        ));
        assert_eq!(buf.capacity(), 0, "no body allocation for a bad prefix");
    }

    #[test]
    fn truncation_is_distinguished_from_close() {
        // Header cut short.
        let mut cursor = &[1u8, 0][..];
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut cursor, &mut buf, 1024),
            Err(FrameError::Truncated { got: 2, need: 8 })
        ));
        // Body cut short.
        let mut wire = Vec::new();
        wire.extend_from_slice(&8u32.to_le_bytes());
        wire.extend_from_slice(&3u32.to_le_bytes());
        wire.extend_from_slice(b"abc");
        let mut cursor = &wire[..];
        assert!(matches!(
            read_frame(&mut cursor, &mut buf, 1024),
            Err(FrameError::Truncated { got: 11, need: 16 })
        ));
    }

    #[test]
    fn incremental_parse_finds_frames_at_any_split() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, b"first").unwrap();
        write_frame(&mut wire, 2, b"").unwrap();
        write_frame(&mut wire, 3, b"third-body").unwrap();
        // Feed the wire byte by byte: each frame must surface exactly
        // once, exactly when its last byte arrives, never early.
        let mut acc: Vec<u8> = Vec::new();
        let mut seen = Vec::new();
        for &b in &wire {
            acc.push(b);
            while let Some(p) = parse_frame(&acc, 1024).unwrap() {
                seen.push((p.seq, acc[p.body.clone()].to_vec()));
                acc.drain(..p.consumed);
            }
        }
        assert!(acc.is_empty());
        assert_eq!(
            seen,
            vec![
                (1, b"first".to_vec()),
                (2, Vec::new()),
                (3, b"third-body".to_vec()),
            ]
        );
    }

    #[test]
    fn incremental_parse_flags_oversized_immediately() {
        let mut acc = Vec::new();
        acc.extend_from_slice(&u32::MAX.to_le_bytes());
        // Only half the header so far: still undecidable.
        assert!(parse_frame(&acc[..4], 64).unwrap().is_none());
        acc.extend_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            parse_frame(&acc, 64),
            Err(FrameError::Oversized { max: 64, .. })
        ));
    }

    #[test]
    fn append_frame_patches_a_wrong_length_estimate() {
        let mut out = Vec::new();
        append_frame(&mut out, 9, 3, |b| b.extend_from_slice(b"abcde"));
        let p = parse_frame(&out, 1024).unwrap().unwrap();
        assert_eq!(p.seq, 9);
        assert_eq!(&out[p.body], b"abcde");
    }

    #[test]
    fn high_water_shrink() {
        let mut buf = Vec::with_capacity(1 << 20);
        buf.extend_from_slice(&[0u8; 128]);
        shrink_to_high_water(&mut buf, 4096);
        assert!(
            buf.capacity() <= 8192,
            "capacity {} not shrunk",
            buf.capacity()
        );
        assert_eq!(buf.len(), 128);
        // Disabled: capacity untouched.
        let mut big = Vec::with_capacity(1 << 20);
        shrink_to_high_water(&mut big, 0);
        assert!(big.capacity() >= 1 << 20);
        // A buffer still holding more than the mark is left alone.
        let mut full = vec![7u8; 64 << 10];
        let cap = full.capacity();
        shrink_to_high_water(&mut full, 4096);
        assert_eq!(full.capacity(), cap);
    }
}
