//! The wire protocol: compact length-prefixed binary frames.
//!
//! Every message on the wire is one *frame*: a little-endian `u32` body
//! length, a little-endian `u32` sequence tag, then that many body
//! bytes (see [`crate::frame`]). A request body is an opcode byte plus
//! an opcode-specific payload; a response body is a status byte plus a
//! status/opcode-specific payload. The tag correlates responses with
//! requests, so a connection may *pipeline* a window of requests and
//! reap tagged responses as they complete; tag `0` is reserved for
//! unsolicited server frames (`BUSY` at admission, `ERR` ahead of a
//! close).
//!
//! | opcode | request payload | OK response payload |
//! |---|---|---|
//! | `PUT` (1) | `u64 key`, `u32 page_len`, page bytes | empty |
//! | `GET` (2) | `u64 key` | page bytes |
//! | `DEL` (3) | `u64 key` | empty (`NOT_FOUND` if absent) |
//! | `FLUSH` (4) | empty | empty |
//! | `STATS` (5) | empty | Prometheus text (UTF-8) |
//! | `PING` (6) | empty | empty |
//! | `DUMP` (7) | empty | flight-recorder JSON (UTF-8) |
//!
//! Statuses: `OK` (0), `NOT_FOUND` (1, GET/DEL of an absent key),
//! `BUSY` (2, the worker pool is saturated — retry later), `ERR` (3,
//! with a UTF-8 message payload; sent for malformed frames and store
//! errors, and the connection is closed after a malformed frame).
//!
//! `PUT` carries an explicit `page_len` even though the frame length
//! implies it: the redundancy is what lets the server *detect* (rather
//! than silently absorb) a corrupted or truncated producer.

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Store a page under a key.
    Put = 1,
    /// Fetch a page.
    Get = 2,
    /// Remove a key.
    Del = 3,
    /// Block until the store's spill writer has drained.
    Flush = 4,
    /// Fetch the Prometheus telemetry snapshot.
    Stats = 5,
    /// Liveness / round-trip probe.
    Ping = 6,
    /// Fetch an on-demand flight-recorder dump (JSON). Empty `{}` when
    /// the server runs untraced.
    Dump = 7,
}

impl Opcode {
    /// All opcodes, in wire order (indexable by `op as usize - 1`).
    pub const ALL: [Opcode; 7] = [
        Opcode::Put,
        Opcode::Get,
        Opcode::Del,
        Opcode::Flush,
        Opcode::Stats,
        Opcode::Ping,
        Opcode::Dump,
    ];

    /// Decode an opcode byte.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        match b {
            1 => Some(Opcode::Put),
            2 => Some(Opcode::Get),
            3 => Some(Opcode::Del),
            4 => Some(Opcode::Flush),
            5 => Some(Opcode::Stats),
            6 => Some(Opcode::Ping),
            7 => Some(Opcode::Dump),
            _ => None,
        }
    }

    /// Stable lowercase name (telemetry labels, logs).
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Put => "put",
            Opcode::Get => "get",
            Opcode::Del => "del",
            Opcode::Flush => "flush",
            Opcode::Stats => "stats",
            Opcode::Ping => "ping",
            Opcode::Dump => "dump",
        }
    }
}

/// Response status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Success; payload depends on the request opcode.
    Ok = 0,
    /// GET/DEL of a key the store does not hold.
    NotFound = 1,
    /// The worker pool is saturated; the request was not executed.
    Busy = 2,
    /// Error; payload is a UTF-8 message. After a malformed frame the
    /// server sends this and closes the connection.
    Err = 3,
}

impl Status {
    /// Decode a status byte.
    pub fn from_u8(b: u8) -> Option<Status> {
        match b {
            0 => Some(Status::Ok),
            1 => Some(Status::NotFound),
            2 => Some(Status::Busy),
            3 => Some(Status::Err),
            _ => None,
        }
    }
}

/// A decoded request. `Put` borrows its page from the receive buffer —
/// the page bytes are never copied between the socket and the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request<'a> {
    /// Store `page` under `key`.
    Put {
        /// Page key.
        key: u64,
        /// Raw page bytes.
        page: &'a [u8],
    },
    /// Fetch the page under `key`.
    Get {
        /// Page key.
        key: u64,
    },
    /// Remove `key`.
    Del {
        /// Page key.
        key: u64,
    },
    /// Drain the spill writer.
    Flush,
    /// Telemetry snapshot in Prometheus text format.
    Stats,
    /// Round-trip probe.
    Ping,
    /// On-demand flight-recorder dump (JSON).
    Dump,
}

impl Request<'_> {
    /// This request's opcode.
    pub fn opcode(&self) -> Opcode {
        match self {
            Request::Put { .. } => Opcode::Put,
            Request::Get { .. } => Opcode::Get,
            Request::Del { .. } => Opcode::Del,
            Request::Flush => Opcode::Flush,
            Request::Stats => Opcode::Stats,
            Request::Ping => Opcode::Ping,
            Request::Dump => Opcode::Dump,
        }
    }

    /// Append the encoded body (opcode + payload, no length prefix) to
    /// `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.opcode() as u8);
        match self {
            Request::Put { key, page } => {
                buf.extend_from_slice(&key.to_le_bytes());
                buf.extend_from_slice(&(page.len() as u32).to_le_bytes());
                buf.extend_from_slice(page);
            }
            Request::Get { key } | Request::Del { key } => {
                buf.extend_from_slice(&key.to_le_bytes());
            }
            Request::Flush | Request::Stats | Request::Ping | Request::Dump => {}
        }
    }
}

impl<'a> Request<'a> {
    /// Decode a request body. Never panics: every malformation maps to a
    /// [`ProtoError`].
    pub fn decode(body: &'a [u8]) -> Result<Request<'a>, ProtoError> {
        let (&op, rest) = body.split_first().ok_or(ProtoError::Empty)?;
        let op = Opcode::from_u8(op).ok_or(ProtoError::UnknownOpcode(op))?;
        match op {
            Opcode::Put => {
                if rest.len() < 12 {
                    return Err(ProtoError::Truncated {
                        op: "put",
                        need: 12,
                        got: rest.len(),
                    });
                }
                let key = u64::from_le_bytes(rest[..8].try_into().expect("checked length"));
                let declared =
                    u32::from_le_bytes(rest[8..12].try_into().expect("checked length")) as usize;
                let page = &rest[12..];
                if page.len() != declared {
                    return Err(ProtoError::BadPayloadLen {
                        declared,
                        got: page.len(),
                    });
                }
                Ok(Request::Put { key, page })
            }
            Opcode::Get | Opcode::Del => {
                if rest.len() != 8 {
                    return Err(ProtoError::Truncated {
                        op: op.name(),
                        need: 8,
                        got: rest.len(),
                    });
                }
                let key = u64::from_le_bytes(rest.try_into().expect("checked length"));
                Ok(match op {
                    Opcode::Get => Request::Get { key },
                    _ => Request::Del { key },
                })
            }
            Opcode::Flush | Opcode::Stats | Opcode::Ping | Opcode::Dump => {
                if !rest.is_empty() {
                    return Err(ProtoError::TrailingBytes {
                        op: op.name(),
                        extra: rest.len(),
                    });
                }
                Ok(match op {
                    Opcode::Flush => Request::Flush,
                    Opcode::Stats => Request::Stats,
                    Opcode::Ping => Request::Ping,
                    _ => Request::Dump,
                })
            }
        }
    }
}

/// A decoded response: a status plus its raw payload (typed by the
/// request the caller sent — GET gets page bytes, STATS UTF-8 text, ERR
/// a UTF-8 message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response<'a> {
    /// Outcome code.
    pub status: Status,
    /// Raw payload bytes (may be empty).
    pub payload: &'a [u8],
}

impl Response<'_> {
    /// Append the encoded body (status + payload, no length prefix) to
    /// `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.status as u8);
        buf.extend_from_slice(self.payload);
    }
}

impl<'a> Response<'a> {
    /// Decode a response body.
    pub fn decode(body: &'a [u8]) -> Result<Response<'a>, ProtoError> {
        let (&status, payload) = body.split_first().ok_or(ProtoError::Empty)?;
        let status = Status::from_u8(status).ok_or(ProtoError::UnknownStatus(status))?;
        Ok(Response { status, payload })
    }
}

/// Everything that can be wrong with a frame body. Decoding is total:
/// arbitrary bytes produce one of these, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// Zero-length body (no opcode/status byte).
    Empty,
    /// Opcode byte outside the table.
    UnknownOpcode(u8),
    /// Status byte outside the table.
    UnknownStatus(u8),
    /// Fixed-size fields cut short.
    Truncated {
        /// Opcode being decoded.
        op: &'static str,
        /// Bytes the fixed fields require.
        need: usize,
        /// Bytes present.
        got: usize,
    },
    /// PUT's declared page length disagrees with the bytes present.
    BadPayloadLen {
        /// Length the header declared.
        declared: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// Payload bytes after a payload-less opcode.
    TrailingBytes {
        /// Opcode being decoded.
        op: &'static str,
        /// Unexpected byte count.
        extra: usize,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Empty => write!(f, "empty frame body"),
            ProtoError::UnknownOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            ProtoError::UnknownStatus(b) => write!(f, "unknown status {b:#04x}"),
            ProtoError::Truncated { op, need, got } => {
                write!(f, "truncated {op} payload: need {need} bytes, got {got}")
            }
            ProtoError::BadPayloadLen { declared, got } => {
                write!(f, "put declared {declared} page bytes but carried {got}")
            }
            ProtoError::TrailingBytes { op, extra } => {
                write!(f, "{op} carries {extra} unexpected payload bytes")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_all_opcodes() {
        let page = vec![7u8; 64];
        let reqs = [
            Request::Put {
                key: 42,
                page: &page,
            },
            Request::Get { key: u64::MAX },
            Request::Del { key: 0 },
            Request::Flush,
            Request::Stats,
            Request::Ping,
            Request::Dump,
        ];
        let mut buf = Vec::new();
        for req in reqs {
            buf.clear();
            req.encode(&mut buf);
            assert_eq!(Request::decode(&buf).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        let mut buf = Vec::new();
        for (status, payload) in [
            (Status::Ok, &b"page-bytes"[..]),
            (Status::NotFound, &[][..]),
            (Status::Busy, &[][..]),
            (Status::Err, b"boom"),
        ] {
            buf.clear();
            let resp = Response { status, payload };
            resp.encode(&mut buf);
            assert_eq!(Response::decode(&buf).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_bodies_are_errors_not_panics() {
        assert_eq!(Request::decode(&[]), Err(ProtoError::Empty));
        assert_eq!(Request::decode(&[99]), Err(ProtoError::UnknownOpcode(99)));
        // GET with a short key.
        assert!(matches!(
            Request::decode(&[2, 1, 2, 3]),
            Err(ProtoError::Truncated { .. })
        ));
        // PING with trailing junk.
        assert!(matches!(
            Request::decode(&[6, 0]),
            Err(ProtoError::TrailingBytes { .. })
        ));
        // PUT whose declared length disagrees with the body.
        let mut put = Vec::new();
        Request::Put {
            key: 1,
            page: &[1, 2, 3],
        }
        .encode(&mut put);
        put.pop();
        assert!(matches!(
            Request::decode(&put),
            Err(ProtoError::BadPayloadLen {
                declared: 3,
                got: 2
            })
        ));
        assert_eq!(Response::decode(&[]), Err(ProtoError::Empty));
        assert_eq!(Response::decode(&[9]), Err(ProtoError::UnknownStatus(9)));
    }
}
