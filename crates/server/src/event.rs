//! Readiness backends for the evented server core.
//!
//! The reactor never blocks in socket I/O; it blocks in exactly one
//! place — [`EventBackend::poll`] — and acts on whatever file
//! descriptors the kernel reports ready. The backend is a trait, the
//! same move the spill tier made with `SpillMedium`: the reactor is
//! written once against readiness semantics and the mechanism is
//! swappable underneath it.
//!
//! Two implementations ship:
//!
//! - [`EpollBackend`] (Linux): one `epoll` instance, level-triggered.
//!   O(ready) wake-ups, the right default for thousands of mostly-idle
//!   connections.
//! - [`PollBackend`] (portable Unix): `poll(2)` over the registered fd
//!   set. O(registered) per wake-up, but dependency-free and available
//!   everywhere; it is also the reference implementation the epoll path
//!   is tested against.
//!
//! Neither pulls in a crate: the workspace builds offline, so the four
//! syscall wrappers used (`epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! `poll`) are declared `extern "C"` directly — std already links libc
//! on every Unix target.
//!
//! The [`Waker`] is a connected UDP socket pair: any thread can make
//! the reactor's poll return by sending one byte, with no
//! platform-specific pipe or eventfd plumbing.

#![allow(clippy::useless_conversion)] // c_int vs i32 across targets

use std::io;
use std::net::UdpSocket;
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::Duration;

/// What a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report. `token` is whatever the registration supplied
/// — the reactor uses slab keys plus two reserved values for the
/// listener and the waker.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Registration token.
    pub token: usize,
    /// Readable (includes EOF/peer-hup: a read will not block).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error condition on the fd; the connection should be torn down.
    pub error: bool,
}

/// A pluggable readiness mechanism. All methods take `&mut self`: the
/// backend is owned by the single reactor thread.
pub trait EventBackend: Send {
    /// Stable name for telemetry and logs (`"epoll"`, `"poll"`).
    fn name(&self) -> &'static str;
    /// Start watching `fd` with `token` and `interest`.
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;
    /// Replace the interest set of an already-registered `fd`.
    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;
    /// Stop watching `fd`. Must be called before the fd is closed.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;
    /// Block until something is ready or `timeout` elapses, appending
    /// reports to `out` (cleared first). A timeout is not an error —
    /// `out` is simply left empty.
    fn poll(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()>;
}

/// Which readiness mechanism to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Platform default: epoll on Linux, poll(2) elsewhere.
    #[default]
    Platform,
    /// Force the portable poll(2) backend (fallback/regression testing).
    Poll,
}

/// Build the backend for `kind`.
pub fn new_backend(kind: BackendKind) -> io::Result<Box<dyn EventBackend>> {
    match kind {
        BackendKind::Poll => Ok(Box::new(PollBackend::new())),
        BackendKind::Platform => {
            #[cfg(target_os = "linux")]
            {
                Ok(Box::new(EpollBackend::new()?))
            }
            #[cfg(not(target_os = "linux"))]
            {
                Ok(Box::new(PollBackend::new()))
            }
        }
    }
}

/// Cross-thread wake-up for a blocked [`EventBackend::poll`]: a
/// connected UDP socket pair on loopback. [`Waker::wake`] sends one
/// byte; the reactor registers [`Waker::reader_fd`] for readability and
/// [`Waker::drain`]s on wake. Pure std, works under every backend.
pub struct Waker {
    reader: UdpSocket,
    writer: UdpSocket,
}

impl Waker {
    /// Build the socket pair.
    pub fn new() -> io::Result<Waker> {
        let reader = UdpSocket::bind("127.0.0.1:0")?;
        let writer = UdpSocket::bind("127.0.0.1:0")?;
        // Connect both ways so stray datagrams from other sockets are
        // filtered by the kernel.
        writer.connect(reader.local_addr()?)?;
        reader.connect(writer.local_addr()?)?;
        reader.set_nonblocking(true)?;
        writer.set_nonblocking(true)?;
        Ok(Waker { reader, writer })
    }

    /// A send handle that can leave the reactor thread.
    pub fn handle(&self) -> io::Result<WakeHandle> {
        Ok(WakeHandle {
            writer: self.writer.try_clone()?,
        })
    }

    /// The fd the reactor registers for readability.
    pub fn reader_fd(&self) -> RawFd {
        self.reader.as_raw_fd()
    }

    /// Discard pending wake bytes so the next poll blocks again.
    pub fn drain(&self) {
        let mut b = [0u8; 16];
        while self.reader.recv(&mut b).is_ok() {}
    }
}

/// Clonable sender half of a [`Waker`].
pub struct WakeHandle {
    writer: UdpSocket,
}

impl WakeHandle {
    /// Make the reactor's poll return. Best-effort: a full socket
    /// buffer means a wake is already pending.
    pub fn wake(&self) {
        let _ = self.writer.send(&[1]);
    }
}

/// Clamp a poll timeout to whole milliseconds for the C interfaces,
/// rounding up so a 100µs timeout does not spin at 0ms.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => t
            .as_millis()
            .max(if t.is_zero() { 0 } else { 1 })
            .min(i32::MAX as u128) as i32,
    }
}

// ---------------------------------------------------------------- epoll

#[cfg(target_os = "linux")]
pub use self::epoll::EpollBackend;

#[cfg(target_os = "linux")]
mod epoll {
    use super::{timeout_ms, Event, EventBackend, Interest};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// Mirrors the kernel's `struct epoll_event`; packed on x86-64,
    /// exactly as the ABI demands.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// Level-triggered epoll readiness.
    pub struct EpollBackend {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    // The epoll fd is plain data; only the owning reactor thread uses it.
    unsafe impl Send for EpollBackend {}

    impl EpollBackend {
        /// Create the epoll instance.
        pub fn new() -> io::Result<EpollBackend> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(EpollBackend {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: {
                    let mut e = EPOLLRDHUP;
                    if interest.readable {
                        e |= EPOLLIN;
                    }
                    if interest.writable {
                        e |= EPOLLOUT;
                    }
                    e
                },
                data: token as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }
    }

    impl Drop for EpollBackend {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }

    impl EventBackend for EpollBackend {
        fn name(&self) -> &'static str {
            "epoll"
        }

        fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READ)
        }

        fn poll(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let n = loop {
                let r = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as i32,
                        timeout_ms(timeout),
                    )
                };
                match cvt(r) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &self.buf[..n] {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data as usize,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & EPOLLERR != 0,
                });
            }
            if n == self.buf.len() {
                // Saturated report: give the next poll more room.
                let len = self.buf.len() * 2;
                self.buf.resize(len, EpollEvent { events: 0, data: 0 });
            }
            Ok(())
        }
    }
}

// ----------------------------------------------------------------- poll

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

/// Mirrors `struct pollfd` — identical layout on every Unix.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

extern "C" {
    // nfds_t is unsigned long on the platforms we build for.
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// Portable `poll(2)` readiness: the registered set is a dense vector
/// scanned each call — O(registered fds), fine for hundreds, the
/// fallback story (and test oracle) everywhere epoll is missing.
pub struct PollBackend {
    fds: Vec<PollFd>,
    tokens: Vec<usize>,
}

impl PollBackend {
    /// Create an empty registration set.
    pub fn new() -> PollBackend {
        PollBackend {
            fds: Vec::new(),
            tokens: Vec::new(),
        }
    }

    fn find(&self, fd: RawFd) -> Option<usize> {
        self.fds.iter().position(|p| p.fd == fd)
    }
}

impl Default for PollBackend {
    fn default() -> Self {
        Self::new()
    }
}

fn poll_events(interest: Interest) -> i16 {
    let mut e = 0i16;
    if interest.readable {
        e |= POLLIN;
    }
    if interest.writable {
        e |= POLLOUT;
    }
    e
}

impl EventBackend for PollBackend {
    fn name(&self) -> &'static str {
        "poll"
    }

    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        if self.find(fd).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.fds.push(PollFd {
            fd,
            events: poll_events(interest),
            revents: 0,
        });
        self.tokens.push(token);
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let i = self
            .find(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.fds[i].events = poll_events(interest);
        self.tokens[i] = token;
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let i = self
            .find(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.fds.swap_remove(i);
        self.tokens.swap_remove(i);
        Ok(())
    }

    fn poll(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        if self.fds.is_empty() {
            // Nothing registered: sleep out the timeout rather than
            // handing poll(2) an empty set in a hot loop.
            if let Some(t) = timeout {
                std::thread::sleep(t);
            }
            return Ok(());
        }
        let n = loop {
            let r = unsafe {
                poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as u64,
                    timeout_ms(timeout),
                )
            };
            if r >= 0 {
                break r as usize;
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        };
        if n == 0 {
            return Ok(());
        }
        for (p, &token) in self.fds.iter_mut().zip(&self.tokens) {
            let r = p.revents;
            p.revents = 0;
            if r == 0 {
                continue;
            }
            out.push(Event {
                token,
                readable: r & (POLLIN | POLLHUP) != 0,
                writable: r & POLLOUT != 0,
                error: r & POLLERR != 0,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn backends() -> Vec<Box<dyn EventBackend>> {
        let mut v: Vec<Box<dyn EventBackend>> = vec![Box::new(PollBackend::new())];
        #[cfg(target_os = "linux")]
        v.push(Box::new(EpollBackend::new().unwrap()));
        v
    }

    /// A loopback TCP pair.
    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (b, _) = l.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_when_bytes_arrive_writable_when_asked() {
        for mut be in backends() {
            let (mut a, b) = pair();
            b.set_nonblocking(true).unwrap();
            be.register(b.as_raw_fd(), 42, Interest::READ).unwrap();

            // Nothing pending: a short poll times out empty.
            let mut out = Vec::new();
            be.poll(&mut out, Some(Duration::from_millis(10))).unwrap();
            assert!(out.is_empty(), "{}: spurious event", be.name());

            a.write_all(b"x").unwrap();
            be.poll(&mut out, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(out.len(), 1, "{}", be.name());
            assert_eq!(out[0].token, 42);
            assert!(out[0].readable);

            // Level-triggered: still readable until drained.
            be.poll(&mut out, Some(Duration::from_secs(5))).unwrap();
            assert!(out.iter().any(|e| e.token == 42 && e.readable));
            let mut one = [0u8; 8];
            let n = (&b).read(&mut one).unwrap();
            assert_eq!(n, 1);

            // Ask for writability on an idle socket: immediately ready.
            be.reregister(b.as_raw_fd(), 42, Interest::BOTH).unwrap();
            be.poll(&mut out, Some(Duration::from_secs(5))).unwrap();
            assert!(
                out.iter().any(|e| e.token == 42 && e.writable),
                "{}: expected writable",
                be.name()
            );

            be.deregister(b.as_raw_fd()).unwrap();
            a.write_all(b"y").unwrap();
            be.poll(&mut out, Some(Duration::from_millis(20))).unwrap();
            assert!(
                out.is_empty(),
                "{}: deregistered fd still reported",
                be.name()
            );
        }
    }

    #[test]
    fn peer_close_reads_as_readable() {
        for mut be in backends() {
            let (a, b) = pair();
            b.set_nonblocking(true).unwrap();
            be.register(b.as_raw_fd(), 7, Interest::READ).unwrap();
            drop(a);
            let mut out = Vec::new();
            be.poll(&mut out, Some(Duration::from_secs(5))).unwrap();
            assert!(
                out.iter().any(|e| e.token == 7 && e.readable),
                "{}: close not visible as readable",
                be.name()
            );
        }
    }

    #[test]
    fn waker_unblocks_poll_from_another_thread() {
        for mut be in backends() {
            let waker = Waker::new().unwrap();
            be.register(waker.reader_fd(), 99, Interest::READ).unwrap();
            let h = waker.handle().unwrap();
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                h.wake();
            });
            let mut out = Vec::new();
            let t0 = std::time::Instant::now();
            be.poll(&mut out, Some(Duration::from_secs(10))).unwrap();
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "{}: wake did not unblock poll",
                be.name()
            );
            assert!(out.iter().any(|e| e.token == 99 && e.readable));
            waker.drain();
            be.poll(&mut out, Some(Duration::from_millis(10))).unwrap();
            assert!(
                out.is_empty(),
                "{}: drained waker still readable",
                be.name()
            );
            t.join().unwrap();
        }
    }
}
