//! The fixed worker pool and its bounded, counted admission.
//!
//! Workers are spawned once at server start and each serves one
//! connection at a time, end to end. The accept loop hands connections
//! over through a channel, but the bound is enforced by an explicit
//! in-flight counter, not channel capacity: a connection is admitted
//! only while `in_flight < workers + backlog`, the counter incremented
//! at admission and decremented when a worker finishes the connection.
//!
//! Counting (rather than a zero-capacity rendezvous hand-off) is what
//! makes admission deterministic: whether a worker thread happens to be
//! parked in `recv` at the instant of the `try_send` is a scheduler
//! race — a freshly spawned server would reject its first burst, and a
//! worker looping between connections would flicker BUSY. The counter
//! tracks the actual capacity commitment, so saturation behaviour is
//! exact and testable: with `backlog = 0`, connection `workers + 1` is
//! refused while the first `workers` are being served, always.

use crate::conn;
use crate::service::Service;
use crate::ServerConfig;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

pub(crate) struct WorkerPool {
    tx: Option<Sender<TcpStream>>,
    in_flight: Arc<AtomicUsize>,
    cap: usize,
    handles: Vec<JoinHandle<()>>,
}

/// The accept loop's handle into the pool: a sender plus the shared
/// admission state. Dropping it (when the accept thread exits) releases
/// its half of the channel; [`WorkerPool::join`] drops the other, which
/// is what disconnects the workers.
pub(crate) struct Dispatcher {
    tx: Sender<TcpStream>,
    in_flight: Arc<AtomicUsize>,
    cap: usize,
}

impl Dispatcher {
    /// Admit `stream` if the pool has capacity, handing it to a worker.
    /// Returns the stream back when the pool is saturated (the caller
    /// answers `BUSY`) or shut down. Only the single accept thread
    /// admits, so the load-then-increment pair cannot race another
    /// admitter; workers only ever decrement.
    pub(crate) fn try_dispatch(&self, stream: TcpStream) -> Result<(), TcpStream> {
        if self.in_flight.load(Ordering::Acquire) >= self.cap {
            return Err(stream);
        }
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        self.tx.send(stream).map_err(|e| {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            e.0
        })
    }
}

impl WorkerPool {
    pub(crate) fn new(
        service: Arc<Service>,
        cfg: Arc<ServerConfig>,
        shutdown: Arc<AtomicBool>,
    ) -> WorkerPool {
        let (tx, rx) = channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let handles = (0..cfg.workers)
            .map(|w| {
                let service = Arc::clone(&service);
                let cfg = Arc::clone(&cfg);
                let shutdown = Arc::clone(&shutdown);
                let rx = Arc::clone(&rx);
                let in_flight = Arc::clone(&in_flight);
                std::thread::Builder::new()
                    .name(format!("cc-server-worker-{w}"))
                    .spawn(move || worker_loop(w, &service, &cfg, &shutdown, &rx, &in_flight))
                    .expect("spawn server worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            in_flight,
            cap: cfg.workers + cfg.backlog,
            handles,
        }
    }

    /// The accept loop's admission handle.
    pub(crate) fn dispatcher(&self) -> Dispatcher {
        Dispatcher {
            tx: self.tx.clone().expect("pool already joined"),
            in_flight: Arc::clone(&self.in_flight),
            cap: self.cap,
        }
    }

    /// Close the queue and join every worker. In-flight requests finish
    /// (the connection loops honour the shutdown flag only between
    /// frames), then workers observe the disconnected channel and exit.
    pub(crate) fn join(&mut self) {
        self.tx = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    worker: usize,
    service: &Service,
    cfg: &ServerConfig,
    shutdown: &AtomicBool,
    rx: &Mutex<Receiver<TcpStream>>,
    in_flight: &AtomicUsize,
) {
    loop {
        // Hold the receiver lock only for the dequeue, not while serving.
        let stream = match rx.lock().expect("pool receiver poisoned").recv() {
            Ok(s) => s,
            Err(_) => return, // queue closed: server is shutting down
        };
        conn::serve(service, cfg, shutdown, worker, stream);
        in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}
