//! A blocking, connection-reusing client for `cc-server`.
//!
//! One [`Client`] owns one TCP connection and a pair of reusable
//! encode/decode buffers; every call is a single request/response
//! round-trip on that connection, so a loop of operations allocates
//! nothing in steady state. The client is deliberately synchronous — it
//! is the building block of the load generator and the integration
//! tests, and N concurrent clients are N `Client` values on N threads.
//!
//! Every request frame carries a `seq` tag the server echoes on the
//! response; the simple call API verifies the echo, and the **pipelined
//! mode** ([`Client::pipeline_send`] / [`Client::pipeline_recv`], with
//! [`Pipeline`] doing the exactly-once window bookkeeping) issues a
//! window of tagged requests before reaping any responses — one
//! connection, many requests in flight, no per-request round-trip
//! stall. Pipelined I/O bypasses the retry policy: a failure mid-window
//! leaves in-flight requests in an unknown state that only the caller
//! can reconcile.
//!
//! A server answering `BUSY` closes the connection, and a saturated or
//! briefly unreachable server surfaces as a connect/read failure. Both
//! are *transient*: [`Client::with_retry`] arms a bounded
//! retry-with-exponential-backoff loop (reconnecting between attempts)
//! so a caller rides out short saturation windows with a hard bound on
//! total wait. The default policy is a single attempt — errors surface
//! immediately, exactly as before.

use crate::frame::{self, FrameError};
use crate::proto::{ProtoError, Request, Response, Status};
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Bounded retry policy for transient failures (`BUSY` answers,
/// connect/read timeouts, connection resets).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per call (first try + retries); clamped ≥ 1.
    pub attempts: u32,
    /// Backoff before retry `n` is `base_delay << (n - 1)`.
    pub base_delay: Duration,
}

impl Default for RetryPolicy {
    /// One attempt: no retry, errors surface immediately.
    fn default() -> Self {
        RetryPolicy {
            attempts: 1,
            base_delay: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// The worst-case total time spent sleeping between attempts (the
    /// hard bound a saturated-pool caller is promised, excluding the
    /// per-attempt I/O time itself).
    pub fn max_backoff_total(&self) -> Duration {
        let mut total = Duration::ZERO;
        for attempt in 1..self.attempts.max(1) {
            total += backoff(self.base_delay, attempt);
        }
        total
    }
}

/// Backoff before retry `attempt` (1-based): exponential, capped so a
/// huge attempt count cannot overflow into an absurd sleep.
fn backoff(base: Duration, attempt: u32) -> Duration {
    base.saturating_mul(1u32 << (attempt - 1).min(10))
}

/// Transient transport failures worth a reconnect-and-retry: the server
/// closing a rejected connection, a connect refused while the accept
/// loop is wedged, or a read/connect timeout.
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::UnexpectedEof
    )
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (includes the server closing mid-response).
    Io(io::Error),
    /// The server answered `BUSY`: the worker pool is saturated and the
    /// request was not executed. Retry later, ideally with backoff.
    Busy,
    /// The server answered `ERR` with this message.
    Server(String),
    /// The response violated the protocol (bad frame, unknown status,
    /// unexpected payload shape).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Busy => write!(f, "server busy: worker pool saturated"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Protocol(e.to_string())
    }
}

/// A blocking connection to a `cc-server`.
pub struct Client {
    stream: TcpStream,
    /// Resolved peer address, kept for retry reconnects (the server
    /// closes a connection it answered `BUSY`).
    addr: SocketAddr,
    /// Request body staging (reused).
    send: Vec<u8>,
    /// Response body landing zone (reused).
    recv: Vec<u8>,
    max_frame: usize,
    timeout: Option<Duration>,
    retry: RetryPolicy,
    /// Next request tag; `0` is reserved for unsolicited server frames.
    next_seq: u32,
}

impl Client {
    /// Connect. `TCP_NODELAY` is set — every call is a full round-trip.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            addr,
            send: Vec::new(),
            recv: Vec::new(),
            max_frame: frame::DEFAULT_MAX_FRAME,
            timeout: None,
            retry: RetryPolicy::default(),
            next_seq: 1,
        })
    }

    /// Allocate the next request tag, skipping the reserved `0`.
    fn alloc_seq(&mut self) -> u32 {
        let seq = self.next_seq;
        self.next_seq = match self.next_seq.wrapping_add(1) {
            frame::SEQ_UNSOLICITED => 1,
            n => n,
        };
        seq
    }

    /// Cap the response frames this client will accept.
    pub fn with_max_frame(mut self, bytes: usize) -> Client {
        self.max_frame = bytes.max(frame::LEN_PREFIX);
        self
    }

    /// Arm bounded retry-with-backoff on `BUSY` answers and transient
    /// transport failures: up to `attempts` total tries per call, with
    /// exponential backoff starting at `base_delay` and a reconnect
    /// before each retry. Total sleep is bounded by
    /// [`RetryPolicy::max_backoff_total`].
    pub fn with_retry(mut self, attempts: u32, base_delay: Duration) -> Client {
        self.retry = RetryPolicy {
            attempts: attempts.max(1),
            base_delay,
        };
        self
    }

    /// The retry policy in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Bound how long a call may wait on the server before erroring
    /// with a timeout (`None` = wait forever, the default). Survives
    /// retry reconnects.
    pub fn set_timeout(&mut self, t: Option<Duration>) -> io::Result<()> {
        self.timeout = t;
        self.stream.set_read_timeout(t)?;
        self.stream.set_write_timeout(t)
    }

    /// Replace the connection ahead of a retry (the server closes
    /// `BUSY` connections, and a torn stream can't be reused).
    fn reconnect(&mut self) -> io::Result<()> {
        let stream = match self.timeout {
            Some(t) => TcpStream::connect_timeout(&self.addr, t)?,
            None => TcpStream::connect(self.addr)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.timeout)?;
        stream.set_write_timeout(self.timeout)?;
        self.stream = stream;
        Ok(())
    }

    /// One wire round-trip; the response body lands in `self.recv`.
    /// The response must echo the request's tag — the only unsolicited
    /// frames (tag 0) a server sends are `BUSY`/`ERR` ahead of a close,
    /// which map to their own outcomes.
    fn call_once(&mut self, req: &Request<'_>) -> Result<Status, ClientError> {
        let seq = self.alloc_seq();
        self.send.clear();
        req.encode(&mut self.send);
        frame::write_frame(&mut self.stream, seq, &self.send)?;
        let resp_seq = frame::read_frame(&mut self.stream, &mut self.recv, self.max_frame)?;
        let status = Response::decode(&self.recv)?.status;
        if resp_seq != seq
            && !(resp_seq == frame::SEQ_UNSOLICITED && matches!(status, Status::Busy | Status::Err))
        {
            return Err(ClientError::Protocol(format!(
                "response tag mismatch: sent {seq}, got {resp_seq}"
            )));
        }
        Ok(status)
    }

    /// Pipelined send: encode and write one tagged request *without*
    /// waiting for its response, returning the tag to reap later with
    /// [`Client::pipeline_recv`]. No retry is applied.
    pub fn pipeline_send(&mut self, req: &Request<'_>) -> Result<u32, ClientError> {
        let seq = self.alloc_seq();
        self.send.clear();
        req.encode(&mut self.send);
        frame::write_frame(&mut self.stream, seq, &self.send)?;
        Ok(seq)
    }

    /// Pipelined receive: read the next tagged response, leaving its
    /// payload in `out` (cleared first). Returns `(seq, status)`; the
    /// caller matches `seq` against its outstanding window (see
    /// [`Pipeline`]). An unsolicited `BUSY` (tag 0) surfaces as
    /// [`ClientError::Busy`].
    pub fn pipeline_recv(&mut self, out: &mut Vec<u8>) -> Result<(u32, Status), ClientError> {
        let seq = frame::read_frame(&mut self.stream, &mut self.recv, self.max_frame)?;
        let resp = Response::decode(&self.recv)?;
        if seq == frame::SEQ_UNSOLICITED {
            return match resp.status {
                Status::Busy => Err(ClientError::Busy),
                Status::Err => Err(ClientError::Server(
                    String::from_utf8_lossy(resp.payload).into_owned(),
                )),
                other => Err(ClientError::Protocol(format!(
                    "unsolicited response with status {other:?}"
                ))),
            };
        }
        out.clear();
        out.extend_from_slice(resp.payload);
        Ok((seq, resp.status))
    }

    /// Round-trip with the retry policy applied: `BUSY` answers and
    /// transient transport errors reconnect and try again (with
    /// backoff) until the attempts run out; the last outcome is then
    /// returned as-is. The response body is left in `self.recv`.
    fn call(&mut self, req: &Request<'_>) -> Result<Status, ClientError> {
        let attempts = self.retry.attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let outcome = self.call_once(req);
            let retryable = match &outcome {
                Ok(Status::Busy) => true,
                Err(ClientError::Io(e)) => is_transient(e),
                _ => false,
            };
            if !retryable || attempt >= attempts {
                return outcome;
            }
            std::thread::sleep(backoff(self.retry.base_delay, attempt));
            if let Err(e) = self.reconnect() {
                if !is_transient(&e) {
                    return Err(ClientError::Io(e));
                }
                // A transient reconnect failure consumes the next
                // attempt too; keep the loop bounded.
                if attempt + 1 >= attempts {
                    return Err(ClientError::Io(e));
                }
                attempt += 1;
            }
        }
    }

    /// The response payload from the last [`Client::call`].
    fn payload(&self) -> Result<&[u8], ClientError> {
        Ok(Response::decode(&self.recv)?.payload)
    }

    /// Common tail: map `BUSY`/`ERR` to errors, pass anything else on.
    fn expect_plain(&self, status: Status) -> Result<Status, ClientError> {
        match status {
            Status::Busy => Err(ClientError::Busy),
            Status::Err => Err(ClientError::Server(
                String::from_utf8_lossy(self.payload()?).into_owned(),
            )),
            other => Ok(other),
        }
    }

    /// Store `page` under `key`.
    pub fn put(&mut self, key: u64, page: &[u8]) -> Result<(), ClientError> {
        let status = self.call(&Request::Put { key, page })?;
        match self.expect_plain(status)? {
            Status::Ok => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "unexpected PUT status {other:?}"
            ))),
        }
    }

    /// Fetch `key` into `out` (resized to the page). Returns `false` on
    /// a miss.
    pub fn get(&mut self, key: u64, out: &mut Vec<u8>) -> Result<bool, ClientError> {
        let status = self.call(&Request::Get { key })?;
        match self.expect_plain(status)? {
            Status::Ok => {
                out.clear();
                out.extend_from_slice(self.payload()?);
                Ok(true)
            }
            Status::NotFound => Ok(false),
            other => Err(ClientError::Protocol(format!(
                "unexpected GET status {other:?}"
            ))),
        }
    }

    /// Remove `key`. Returns whether it existed.
    pub fn del(&mut self, key: u64) -> Result<bool, ClientError> {
        let status = self.call(&Request::Del { key })?;
        match self.expect_plain(status)? {
            Status::Ok => Ok(true),
            Status::NotFound => Ok(false),
            other => Err(ClientError::Protocol(format!(
                "unexpected DEL status {other:?}"
            ))),
        }
    }

    /// Block until the server's store has drained its spill writer.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        let status = self.call(&Request::Flush)?;
        match self.expect_plain(status)? {
            Status::Ok => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "unexpected FLUSH status {other:?}"
            ))),
        }
    }

    /// Round-trip probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let status = self.call(&Request::Ping)?;
        match self.expect_plain(status)? {
            Status::Ok => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "unexpected PING status {other:?}"
            ))),
        }
    }

    /// The server's telemetry snapshot in Prometheus text format
    /// (store metrics under `cc_store_*`, wire metrics under
    /// `cc_server_*`).
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let status = self.call(&Request::Stats)?;
        match self.expect_plain(status)? {
            Status::Ok => String::from_utf8(self.payload()?.to_vec())
                .map_err(|_| ClientError::Protocol("STATS payload is not UTF-8".into())),
            other => Err(ClientError::Protocol(format!(
                "unexpected STATS status {other:?}"
            ))),
        }
    }

    /// An on-demand flight-recorder dump: recent spans and anomaly
    /// events as a JSON document. An untraced server answers `{}`.
    pub fn dump(&mut self) -> Result<String, ClientError> {
        let status = self.call(&Request::Dump)?;
        match self.expect_plain(status)? {
            Status::Ok => String::from_utf8(self.payload()?.to_vec())
                .map_err(|_| ClientError::Protocol("DUMP payload is not UTF-8".into())),
            other => Err(ClientError::Protocol(format!(
                "unexpected DUMP status {other:?}"
            ))),
        }
    }
}

/// Window bookkeeping for pipelined calls on one [`Client`]: tracks the
/// outstanding tags and enforces that every response reaps exactly one
/// of them — a duplicate, unknown, or already-reaped tag is a protocol
/// violation. Responses may complete in any order.
#[derive(Debug, Default)]
pub struct Pipeline {
    outstanding: std::collections::HashSet<u32>,
}

impl Pipeline {
    /// An empty window.
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Requests sent and not yet reaped.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Send one tagged request into the window.
    pub fn send(&mut self, client: &mut Client, req: &Request<'_>) -> Result<u32, ClientError> {
        let seq = client.pipeline_send(req)?;
        if !self.outstanding.insert(seq) {
            return Err(ClientError::Protocol(format!(
                "tag {seq} reused while still in flight"
            )));
        }
        Ok(seq)
    }

    /// Reap one response from the window (any completion order). The
    /// payload lands in `out`; the returned tag identifies which
    /// request completed.
    pub fn recv(
        &mut self,
        client: &mut Client,
        out: &mut Vec<u8>,
    ) -> Result<(u32, Status), ClientError> {
        let (seq, status) = client.pipeline_recv(out)?;
        if !self.outstanding.remove(&seq) {
            return Err(ClientError::Protocol(format!(
                "response tag {seq} was not in flight (duplicate or unknown)"
            )));
        }
        Ok((seq, status))
    }
}
