//! A blocking, connection-reusing client for `cc-server`.
//!
//! One [`Client`] owns one TCP connection and a pair of reusable
//! encode/decode buffers; every call is a single request/response
//! round-trip on that connection, so a loop of operations allocates
//! nothing in steady state. The client is deliberately synchronous — it
//! is the building block of the load generator and the integration
//! tests, and N concurrent clients are N `Client` values on N threads.

use crate::frame::{self, FrameError};
use crate::proto::{ProtoError, Request, Response, Status};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (includes the server closing mid-response).
    Io(io::Error),
    /// The server answered `BUSY`: the worker pool is saturated and the
    /// request was not executed. Retry later, ideally with backoff.
    Busy,
    /// The server answered `ERR` with this message.
    Server(String),
    /// The response violated the protocol (bad frame, unknown status,
    /// unexpected payload shape).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Busy => write!(f, "server busy: worker pool saturated"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Protocol(e.to_string())
    }
}

/// A blocking connection to a `cc-server`.
pub struct Client {
    stream: TcpStream,
    /// Request body staging (reused).
    send: Vec<u8>,
    /// Response body landing zone (reused).
    recv: Vec<u8>,
    max_frame: usize,
}

impl Client {
    /// Connect. `TCP_NODELAY` is set — every call is a full round-trip.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            send: Vec::new(),
            recv: Vec::new(),
            max_frame: frame::DEFAULT_MAX_FRAME,
        })
    }

    /// Cap the response frames this client will accept.
    pub fn with_max_frame(mut self, bytes: usize) -> Client {
        self.max_frame = bytes.max(frame::LEN_PREFIX);
        self
    }

    /// Bound how long a call may wait on the server before erroring
    /// with a timeout (`None` = wait forever, the default).
    pub fn set_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(t)?;
        self.stream.set_write_timeout(t)
    }

    fn call(&mut self, req: &Request<'_>) -> Result<(Status, &[u8]), ClientError> {
        self.send.clear();
        req.encode(&mut self.send);
        frame::write_frame(&mut self.stream, &self.send)?;
        frame::read_frame(&mut self.stream, &mut self.recv, self.max_frame)?;
        let resp = Response::decode(&self.recv)?;
        Ok((resp.status, resp.payload))
    }

    /// Common tail: map `BUSY`/`ERR` to errors, pass anything else on.
    fn expect_plain(status: Status, payload: &[u8]) -> Result<Status, ClientError> {
        match status {
            Status::Busy => Err(ClientError::Busy),
            Status::Err => Err(ClientError::Server(
                String::from_utf8_lossy(payload).into_owned(),
            )),
            other => Ok(other),
        }
    }

    /// Store `page` under `key`.
    pub fn put(&mut self, key: u64, page: &[u8]) -> Result<(), ClientError> {
        let (status, payload) = self.call(&Request::Put { key, page })?;
        match Self::expect_plain(status, payload)? {
            Status::Ok => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "unexpected PUT status {other:?}"
            ))),
        }
    }

    /// Fetch `key` into `out` (resized to the page). Returns `false` on
    /// a miss.
    pub fn get(&mut self, key: u64, out: &mut Vec<u8>) -> Result<bool, ClientError> {
        let (status, payload) = self.call(&Request::Get { key })?;
        match status {
            Status::Ok => {
                out.clear();
                out.extend_from_slice(payload);
                Ok(true)
            }
            Status::NotFound => Ok(false),
            Status::Busy => Err(ClientError::Busy),
            Status::Err => Err(ClientError::Server(
                String::from_utf8_lossy(payload).into_owned(),
            )),
        }
    }

    /// Remove `key`. Returns whether it existed.
    pub fn del(&mut self, key: u64) -> Result<bool, ClientError> {
        let (status, payload) = self.call(&Request::Del { key })?;
        match Self::expect_plain(status, payload)? {
            Status::Ok => Ok(true),
            Status::NotFound => Ok(false),
            other => Err(ClientError::Protocol(format!(
                "unexpected DEL status {other:?}"
            ))),
        }
    }

    /// Block until the server's store has drained its spill writer.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        let (status, payload) = self.call(&Request::Flush)?;
        match Self::expect_plain(status, payload)? {
            Status::Ok => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "unexpected FLUSH status {other:?}"
            ))),
        }
    }

    /// Round-trip probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let (status, payload) = self.call(&Request::Ping)?;
        match Self::expect_plain(status, payload)? {
            Status::Ok => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "unexpected PING status {other:?}"
            ))),
        }
    }

    /// The server's telemetry snapshot in Prometheus text format
    /// (store metrics under `cc_store_*`, wire metrics under
    /// `cc_server_*`).
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let (status, payload) = self.call(&Request::Stats)?;
        match status {
            Status::Ok => String::from_utf8(payload.to_vec())
                .map_err(|_| ClientError::Protocol("STATS payload is not UTF-8".into())),
            Status::Busy => Err(ClientError::Busy),
            other => Err(ClientError::Protocol(format!(
                "unexpected STATS status {other:?}"
            ))),
        }
    }
}
