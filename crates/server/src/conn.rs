//! Per-connection request loop (threaded backend).
//!
//! A worker owns one [`TcpStream`] at a time and serves frames in order.
//! The read/write/payload buffers live across requests (and are shrunk
//! back to [`crate::ServerConfig::buffer_high_water`] after oversized
//! bursts), so a busy connection allocates nothing in steady state.
//! Reads happen in short timed steps ([`READ_STEP`]) so the loop can
//! notice the idle deadline and the server shutdown flag without a
//! dedicated signalling channel; the final step before the deadline is
//! clamped to the remaining wall-clock time, so the timeout fires at
//! `idle_timeout + ε`, not rounded up to the next 20 ms quantum:
//!
//! - **Idle timeout** — no new frame starts within
//!   [`crate::ServerConfig::idle_timeout`]: the connection is closed
//!   quietly (counted once in `idle_timeouts`).
//! - **Shutdown** — the flag is honoured only *between* frames; a frame
//!   already started is read to completion, executed, and answered, so
//!   an orderly shutdown never drops an in-flight request.
//! - **Malformed input** — a truncated header/body, an oversized length
//!   prefix, or an undecodable body increments `malformed_frames`,
//!   best-effort writes an `ERR` response (tagged with the offending
//!   frame's `seq` when it was readable), and closes the connection;
//!   nothing on the wire can panic the worker.
//!
//! Every response frame echoes its request's `seq` tag. The threaded
//! loop still executes strictly one frame at a time, so tags come back
//! in order here — the evented backend ([`crate::reactor`]) is where
//! pipelining pays off — but the framing is identical on both backends.
//!
//! The open/close connection accounting is guard-based: `conn_opened`
//! is paired with a drop guard that always runs `conn_closed`, so the
//! gauge stays balanced on *every* exit path — early transport errors,
//! malformed frames, and even a panic in the handler.

use crate::frame::{HEADER_LEN, SEQ_UNSOLICITED};
use crate::proto::{Request, Response, Status};
use crate::service::Service;
use crate::ServerConfig;
use cc_telemetry::trace::{sop, tier as trace_tier, Span};
use std::io::{ErrorKind, Read};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Granularity of the stepped socket reads: the worst-case extra delay
/// before a worker notices shutdown (the idle deadline is exact — the
/// last step is clamped to the remaining time).
pub(crate) const READ_STEP: Duration = Duration::from_millis(20);

/// Malformed-frame classes (the `b` value of a `malformed` wire event).
pub(crate) mod malformed_class {
    /// EOF or stall inside a frame (truncated header or body).
    pub const TRUNCATED: u64 = 1;
    /// Length prefix above the configured frame ceiling.
    pub const OVERSIZED: u64 = 2;
    /// Frame arrived whole but the body failed protocol decoding.
    pub const UNDECODABLE: u64 = 3;
}

enum ReadOutcome {
    /// The buffer was filled.
    Done,
    /// EOF before the first byte — the peer closed between frames.
    ClosedClean,
    /// EOF or stall mid-frame.
    Truncated,
    /// Idle deadline expired with no frame started.
    IdleTimeout,
    /// Shutdown flag observed between frames.
    Shutdown,
    /// Transport error.
    Failed,
}

/// Fill `buf`, stepping the socket timeout so idle/shutdown stay live.
/// Each step's timeout is clamped to the time left until `deadline`, so
/// the idle outcome is wall-clock exact. `frame_started` marks whether
/// earlier bytes of this frame were already consumed (the header, for a
/// body read): once a frame has begun, shutdown no longer interrupts it
/// — only completion, the deadline, or EOF end it.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
    shutdown: &AtomicBool,
    frame_started: bool,
) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        let started = frame_started || filled > 0;
        if !started && shutdown.load(Ordering::Relaxed) {
            return ReadOutcome::Shutdown;
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return if started {
                ReadOutcome::Truncated
            } else {
                ReadOutcome::IdleTimeout
            };
        }
        // A zero read timeout means "block forever"; clamp up to 1 ms.
        let step = READ_STEP.min(remaining).max(Duration::from_millis(1));
        if stream.set_read_timeout(Some(step)).is_err() {
            return ReadOutcome::Failed;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && !frame_started {
                    ReadOutcome::ClosedClean
                } else {
                    ReadOutcome::Truncated
                };
            }
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Failed,
        }
    }
    ReadOutcome::Done
}

/// Why the serve loop ended (drives the close-side counters).
enum CloseReason {
    Peer,
    Idle,
    Shutdown,
    Malformed,
    Error,
}

/// Pairs every [`Service::conn_opened`] with exactly one
/// [`Service::conn_closed`], no matter how the serve loop exits —
/// return, transport error, or panic.
struct ConnGuard<'a> {
    service: &'a Service,
    stripe: usize,
    conn_id: u64,
    requests: u64,
    idle: bool,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.service
            .conn_closed(self.stripe, self.conn_id, self.requests, self.idle);
    }
}

/// Serve `stream` until it closes. `stripe` is the worker's telemetry
/// stripe.
pub(crate) fn serve(
    service: &Service,
    cfg: &ServerConfig,
    shutdown: &AtomicBool,
    stripe: usize,
    mut stream: TcpStream,
) {
    let conn_id = service.next_conn_id();
    service.conn_opened(stripe, conn_id);
    let mut guard = ConnGuard {
        service,
        stripe,
        conn_id,
        requests: 0,
        idle: false,
    };
    let _ = stream.set_nodelay(true);

    let mut body = Vec::new();
    let mut payload = Vec::new();
    let mut wire = Vec::new();

    let reason = loop {
        // --- Read the next frame (header, then body). ---
        let mut header = [0u8; HEADER_LEN];
        let deadline = Instant::now() + cfg.idle_timeout;
        match read_full(&mut stream, &mut header, deadline, shutdown, false) {
            ReadOutcome::Done => {}
            ReadOutcome::ClosedClean => break CloseReason::Peer,
            ReadOutcome::IdleTimeout => break CloseReason::Idle,
            ReadOutcome::Shutdown => break CloseReason::Shutdown,
            ReadOutcome::Truncated => {
                service.malformed(stripe, conn_id, malformed_class::TRUNCATED);
                send_err(
                    &mut stream,
                    &mut wire,
                    SEQ_UNSOLICITED,
                    "truncated frame header",
                );
                break CloseReason::Malformed;
            }
            ReadOutcome::Failed => break CloseReason::Error,
        }
        let len = u32::from_le_bytes(header[..4].try_into().expect("fixed split")) as usize;
        let seq = u32::from_le_bytes(header[4..].try_into().expect("fixed split"));
        if len > cfg.max_frame_bytes {
            service.malformed(stripe, conn_id, malformed_class::OVERSIZED);
            send_err(&mut stream, &mut wire, seq, "frame exceeds size limit");
            break CloseReason::Malformed;
        }
        body.clear();
        body.resize(len, 0);
        let deadline = Instant::now() + cfg.idle_timeout;
        match read_full(&mut stream, &mut body, deadline, shutdown, true) {
            ReadOutcome::Done => {}
            ReadOutcome::Truncated | ReadOutcome::ClosedClean => {
                service.malformed(stripe, conn_id, malformed_class::TRUNCATED);
                send_err(&mut stream, &mut wire, seq, "truncated frame body");
                break CloseReason::Malformed;
            }
            ReadOutcome::IdleTimeout | ReadOutcome::Shutdown => unreachable!("frame started"),
            ReadOutcome::Failed => break CloseReason::Error,
        }

        // --- Decode, execute, respond (echoing the request's tag). ---
        let req = match Request::decode(&body) {
            Ok(req) => req,
            Err(e) => {
                service.malformed(stripe, conn_id, malformed_class::UNDECODABLE);
                send_err(&mut stream, &mut wire, seq, &e.to_string());
                break CloseReason::Malformed;
            }
        };
        let op = req.opcode();
        let t0 = Instant::now();
        let (status, tctx) = service.handle(stripe, conn_id, &req, &mut payload);
        wire.clear();
        Response {
            status,
            payload: &payload,
        }
        .encode(&mut wire);
        let f0 = tctx.sampled().then(Instant::now);
        if crate::frame::write_frame(&mut stream, seq, &wire).is_err() {
            break CloseReason::Error;
        }
        if let (Some(tr), Some(f0)) = (service.tracer(), f0) {
            // Reply flush as its own child span: on this blocking
            // backend it is the socket write itself.
            tr.record(
                stripe,
                &Span {
                    trace_id: tctx.trace_id,
                    span_id: tr.alloc_span(),
                    parent: tctx.parent_span,
                    op: sop::REPLY_FLUSH,
                    tier: trace_tier::NONE,
                    codec: op as u8,
                    status: status as u8,
                    start_ns: tr.now_ns(f0),
                    queue_ns: 0,
                    service_ns: f0.elapsed().as_nanos() as u64,
                    arg: wire.len() as u64,
                },
            );
        }
        service.record_latency(op, t0.elapsed().as_nanos() as u64, tctx.trace_id);
        guard.requests += 1;

        // A max-size frame must not pin its worst-case allocation for
        // the life of the connection.
        let hw = cfg.buffer_high_water;
        crate::frame::shrink_to_high_water(&mut body, hw);
        crate::frame::shrink_to_high_water(&mut payload, hw);
        crate::frame::shrink_to_high_water(&mut wire, hw);
    };

    guard.idle = matches!(reason, CloseReason::Idle);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    // Dropping the guard runs `conn_closed` exactly once.
}

/// Best-effort `ERR` response (tagged `seq`) ahead of a malformed-frame
/// close. The peer may already be gone; failures are ignored.
fn send_err(stream: &mut TcpStream, wire: &mut Vec<u8>, seq: u32, msg: &str) {
    wire.clear();
    Response {
        status: Status::Err,
        payload: msg.as_bytes(),
    }
    .encode(wire);
    let _ = crate::frame::write_frame(stream, seq, wire);
}
