//! Per-connection request loop.
//!
//! A worker owns one [`TcpStream`] at a time and serves frames in order.
//! The read/write/payload buffers live across requests, so a busy
//! connection allocates nothing in steady state. Reads happen in short
//! timed steps ([`READ_STEP`]) so the loop can notice the idle deadline
//! and the server shutdown flag without a dedicated signalling channel:
//!
//! - **Idle timeout** — no new frame starts within
//!   [`crate::ServerConfig::idle_timeout`]: the connection is closed
//!   quietly (counted in `idle_timeouts`).
//! - **Shutdown** — the flag is honoured only *between* frames; a frame
//!   already started is read to completion, executed, and answered, so
//!   an orderly shutdown never drops an in-flight request.
//! - **Malformed input** — a truncated header/body, an oversized length
//!   prefix, or an undecodable body increments `malformed_frames`,
//!   best-effort writes an `ERR` response, and closes the connection;
//!   nothing on the wire can panic the worker.

use crate::frame::LEN_PREFIX;
use crate::proto::{Request, Response, Status};
use crate::service::Service;
use crate::ServerConfig;
use std::io::{ErrorKind, Read};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Granularity of the stepped socket reads: the worst-case extra delay
/// before a worker notices shutdown or an expired idle deadline.
pub(crate) const READ_STEP: Duration = Duration::from_millis(20);

/// Malformed-frame classes (the `b` value of a `malformed` wire event).
pub(crate) mod malformed_class {
    /// EOF or stall inside a frame (truncated header or body).
    pub const TRUNCATED: u64 = 1;
    /// Length prefix above the configured frame ceiling.
    pub const OVERSIZED: u64 = 2;
    /// Frame arrived whole but the body failed protocol decoding.
    pub const UNDECODABLE: u64 = 3;
}

enum ReadOutcome {
    /// The buffer was filled.
    Done,
    /// EOF before the first byte — the peer closed between frames.
    ClosedClean,
    /// EOF or idle stall mid-frame.
    Truncated,
    /// Idle deadline expired with no frame started.
    IdleTimeout,
    /// Shutdown flag observed between frames.
    Shutdown,
    /// Transport error.
    Failed,
}

/// Fill `buf`, stepping the socket timeout so idle/shutdown stay live.
/// `frame_started` marks whether earlier bytes of this frame were
/// already consumed (the header, for a body read): once a frame has
/// begun, shutdown no longer interrupts it — only completion, the idle
/// deadline, or EOF end it.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
    shutdown: &AtomicBool,
    frame_started: bool,
) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && !frame_started {
                    ReadOutcome::ClosedClean
                } else {
                    ReadOutcome::Truncated
                };
            }
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                let started = frame_started || filled > 0;
                if !started && shutdown.load(Ordering::Relaxed) {
                    return ReadOutcome::Shutdown;
                }
                if Instant::now() >= deadline {
                    return if started {
                        ReadOutcome::Truncated
                    } else {
                        ReadOutcome::IdleTimeout
                    };
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Failed,
        }
    }
    ReadOutcome::Done
}

/// Why the serve loop ended (drives the close-side counters).
enum CloseReason {
    Peer,
    Idle,
    Shutdown,
    Malformed,
    Error,
}

/// Serve `stream` until it closes. `stripe` is the worker's telemetry
/// stripe.
pub(crate) fn serve(
    service: &Service,
    cfg: &ServerConfig,
    shutdown: &AtomicBool,
    stripe: usize,
    mut stream: TcpStream,
) {
    let conn_id = service.next_conn_id();
    service.conn_opened(stripe, conn_id);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_STEP));

    let mut body = Vec::new();
    let mut payload = Vec::new();
    let mut wire = Vec::new();
    let mut requests = 0u64;

    let reason = loop {
        // --- Read the next frame (header, then body). ---
        let mut prefix = [0u8; LEN_PREFIX];
        let deadline = Instant::now() + cfg.idle_timeout;
        match read_full(&mut stream, &mut prefix, deadline, shutdown, false) {
            ReadOutcome::Done => {}
            ReadOutcome::ClosedClean => break CloseReason::Peer,
            ReadOutcome::IdleTimeout => break CloseReason::Idle,
            ReadOutcome::Shutdown => break CloseReason::Shutdown,
            ReadOutcome::Truncated => {
                service.malformed(stripe, conn_id, malformed_class::TRUNCATED);
                send_err(&mut stream, &mut wire, "truncated frame header");
                break CloseReason::Malformed;
            }
            ReadOutcome::Failed => break CloseReason::Error,
        }
        let len = u32::from_le_bytes(prefix) as usize;
        if len > cfg.max_frame_bytes {
            service.malformed(stripe, conn_id, malformed_class::OVERSIZED);
            send_err(&mut stream, &mut wire, "frame exceeds size limit");
            break CloseReason::Malformed;
        }
        body.clear();
        body.resize(len, 0);
        let deadline = Instant::now() + cfg.idle_timeout;
        match read_full(&mut stream, &mut body, deadline, shutdown, true) {
            ReadOutcome::Done => {}
            ReadOutcome::Truncated | ReadOutcome::ClosedClean => {
                service.malformed(stripe, conn_id, malformed_class::TRUNCATED);
                send_err(&mut stream, &mut wire, "truncated frame body");
                break CloseReason::Malformed;
            }
            ReadOutcome::IdleTimeout | ReadOutcome::Shutdown => unreachable!("frame started"),
            ReadOutcome::Failed => break CloseReason::Error,
        }

        // --- Decode, execute, respond. ---
        let req = match Request::decode(&body) {
            Ok(req) => req,
            Err(e) => {
                service.malformed(stripe, conn_id, malformed_class::UNDECODABLE);
                send_err(&mut stream, &mut wire, &e.to_string());
                break CloseReason::Malformed;
            }
        };
        let op = req.opcode();
        let t0 = Instant::now();
        let status = service.handle(stripe, &req, &mut payload);
        wire.clear();
        Response {
            status,
            payload: &payload,
        }
        .encode(&mut wire);
        if crate::frame::write_frame(&mut stream, &wire).is_err() {
            break CloseReason::Error;
        }
        service.record_latency(op, t0.elapsed().as_nanos() as u64);
        requests += 1;
    };

    let idle = matches!(reason, CloseReason::Idle);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    service.conn_closed(stripe, conn_id, requests, idle);
}

/// Best-effort `ERR` response ahead of a malformed-frame close. The
/// peer may already be gone; failures are ignored.
fn send_err(stream: &mut TcpStream, wire: &mut Vec<u8>, msg: &str) {
    wire.clear();
    Response {
        status: Status::Err,
        payload: msg.as_bytes(),
    }
    .encode(wire);
    let _ = crate::frame::write_frame(stream, wire);
}
