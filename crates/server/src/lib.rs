//! `cc-server` — a concurrent TCP cache service over the
//! [`CompressedStore`].
//!
//! The compression cache grew up: Douglis's in-kernel compressed tier is
//! today deployed as a *networked* cache service (ZipCache's DRAM/SSD
//! tiers, TMTS's software-defined far memory), and this crate is that
//! serving surface for the workspace. A [`Server`] owns:
//!
//! - an **accept loop** on a [`TcpListener`], feeding
//! - a **fixed worker pool** ([`ServerConfig::workers`] threads) through
//!   a bounded hand-off — when the pool is saturated a new connection is
//!   answered `BUSY` and closed instead of queueing unboundedly,
//! - **per-connection buffers** reused across requests (zero steady-state
//!   allocation on the request path),
//! - **idle timeouts** and **graceful shutdown** that drains in-flight
//!   requests and flushes the store's spill writer,
//! - **wire telemetry** through the same striped counters, latency
//!   histograms, and event ring the store itself uses ([`service`]).
//!
//! The protocol is a compact length-prefixed binary framing
//! ([`proto`], [`frame`]): PUT / GET / DEL / FLUSH / STATS / PING.
//! STATS returns the store's and server's Prometheus snapshots verbatim,
//! so the service is scrapeable from day one. A blocking,
//! connection-reusing [`Client`] lives in [`client`].
//!
//! ```no_run
//! use cc_core::store::{CompressedStore, StoreConfig};
//! use cc_server::{Client, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(64 << 20)));
//! let server = Server::spawn(store, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.put(7, &[0xAB; 4096]).unwrap();
//! let mut page = Vec::new();
//! assert!(client.get(7, &mut page).unwrap());
//! assert_eq!(page, vec![0xAB; 4096]);
//! println!("{}", client.stats().unwrap()); // Prometheus text
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub(crate) mod conn;
pub mod frame;
pub mod pool;
pub mod proto;
pub mod service;

pub use client::{Client, ClientError, RetryPolicy};
pub use proto::{Opcode, ProtoError, Request, Response, Status};
pub use service::Service;

use cc_core::store::CompressedStore;
use pool::WorkerPool;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads; each serves one connection at a time. This is
    /// the hard concurrency bound of the service.
    pub workers: usize,
    /// Connections admitted beyond the worker count (they wait for the
    /// next free worker). `0` (the default) admits exactly `workers`
    /// connections; the next one is answered `BUSY`.
    pub backlog: usize,
    /// Ceiling on a request frame body; a length prefix above this is
    /// malformed and closes the connection.
    pub max_frame_bytes: usize,
    /// A connection with no new frame for this long is closed.
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            backlog: 0,
            max_frame_bytes: frame::DEFAULT_MAX_FRAME,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

impl ServerConfig {
    /// Override the worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Override the admission backlog.
    pub fn with_backlog(mut self, backlog: usize) -> Self {
        self.backlog = backlog;
        self
    }

    /// Override the frame-size ceiling.
    pub fn with_max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes.max(frame::LEN_PREFIX);
        self
    }

    /// Override the idle-connection timeout.
    pub fn with_idle_timeout(mut self, t: Duration) -> Self {
        self.idle_timeout = t;
        self
    }
}

/// A running cache server. Dropping it (or calling
/// [`Server::shutdown`]) stops accepting, drains in-flight requests,
/// joins every thread, and flushes the store's spill writer.
pub struct Server {
    service: Arc<Service>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Mutex<Option<JoinHandle<()>>>,
    pool: Mutex<Option<WorkerPool>>,
}

/// How often the accept loop polls the shutdown flag while no
/// connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start the
    /// accept loop and worker pool.
    pub fn spawn(
        store: Arc<CompressedStore>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let cfg = Arc::new(ServerConfig {
            workers: cfg.workers.max(1),
            ..cfg
        });
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept + short poll: the loop notices the
        // shutdown flag without needing a wake-up connection.
        listener.set_nonblocking(true)?;
        let service = Arc::new(Service::new(store, cfg.workers));
        let shutdown = Arc::new(AtomicBool::new(false));
        let pool = WorkerPool::new(
            Arc::clone(&service),
            Arc::clone(&cfg),
            Arc::clone(&shutdown),
        );

        let accept = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            // The accept thread owns this dispatcher (and its sender
            // clone); it drops when the thread exits, which (with the
            // pool's own sender dropped in join) is what disconnects
            // the workers.
            let dispatcher = pool.dispatcher();
            let busy_stripe = cfg.workers; // the accept loop's own counter stripe
            std::thread::Builder::new()
                .name("cc-server-accept".into())
                .spawn(move || loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if let Err(stream) = dispatcher.try_dispatch(stream) {
                                reject_busy(&service, busy_stripe, stream);
                            }
                        }
                        Err(e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) =>
                        {
                            if shutdown.load(Ordering::Relaxed) {
                                return;
                            }
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            if shutdown.load(Ordering::Relaxed) {
                                return;
                            }
                            std::thread::sleep(ACCEPT_POLL);
                        }
                    }
                })
                .expect("spawn accept loop")
        };

        Ok(Server {
            service,
            local_addr,
            shutdown,
            accept: Mutex::new(Some(accept)),
            pool: Mutex::new(Some(pool)),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared service state: wire telemetry, open-connection gauge,
    /// the store handle, and the STATS renderer.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Graceful shutdown: stop accepting, let every in-flight request
    /// complete and its response flush, join all threads, then drain
    /// the store's spill writer. Idempotent via [`Drop`].
    pub fn shutdown(self) {
        // Drop runs the teardown.
    }

    fn shutdown_inner(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.lock().expect("accept handle poisoned").take() {
            let _ = h.join();
        }
        if let Some(mut pool) = self.pool.lock().expect("pool handle poisoned").take() {
            pool.join();
        }
        // The paper's cleaner must not be left with queued work: an
        // orderly server exit leaves every accepted PUT durable. A dead
        // writer (degraded store) already reverted the pending entries
        // to memory; nothing more a teardown can do about it.
        let _ = self.service.store().flush();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Answer `BUSY` on a connection the pool could not admit, then close.
/// The write is best-effort; the rejection is always counted.
fn reject_busy(service: &Service, stripe: usize, mut stream: std::net::TcpStream) {
    let conn_id = service.next_conn_id();
    service.busy_rejected(stripe, conn_id);
    let mut body = Vec::with_capacity(1);
    Response {
        status: Status::Busy,
        payload: &[],
    }
    .encode(&mut body);
    let _ = frame::write_frame(&mut stream, &body);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}
