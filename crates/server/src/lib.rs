//! `cc-server` — a concurrent TCP cache service over the
//! [`CompressedStore`].
//!
//! The compression cache grew up: Douglis's in-kernel compressed tier is
//! today deployed as a *networked* cache service (ZipCache's DRAM/SSD
//! tiers, TMTS's software-defined far memory), and this crate is that
//! serving surface for the workspace. A [`Server`] runs one of two
//! interchangeable engines behind [`ServerBackend`]:
//!
//! - **Threaded** — a fixed worker pool ([`ServerConfig::workers`]
//!   threads) behind a counted admission gate; each worker serves one
//!   connection at a time, end to end. Simple, and the baseline the
//!   evented engine is benchmarked against.
//! - **Evented** — a single-threaded readiness loop ([`reactor`]) over
//!   nonblocking sockets ([`event`]: epoll on Linux, poll(2) fallback).
//!   Connections cost buffers, not threads, so thousands of mostly-idle
//!   connections are cheap, and the seq-tagged framing lets one
//!   connection pipeline a window of requests.
//!
//! Both engines share the protocol ([`proto`], [`frame`]: PUT / GET /
//! DEL / FLUSH / STATS / PING in tagged, length-prefixed frames), the
//! request dispatcher and wire telemetry ([`service`]), counted
//! admission with `BUSY` rejection, wall-clock idle timeouts, and
//! graceful drain shutdown — the integration suite runs against both.
//! STATS returns the store's and server's Prometheus snapshots verbatim,
//! so the service is scrapeable from day one. A blocking,
//! connection-reusing [`Client`] (with a pipelined mode) lives in
//! [`client`].
//!
//! ```no_run
//! use cc_core::store::{CompressedStore, StoreConfig};
//! use cc_server::{Client, Server, ServerBackend, ServerConfig};
//! use std::sync::Arc;
//!
//! let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(64 << 20)));
//! let cfg = ServerConfig::default().with_backend(ServerBackend::Evented);
//! let server = Server::spawn(store, "127.0.0.1:0", cfg).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.put(7, &[0xAB; 4096]).unwrap();
//! let mut page = Vec::new();
//! assert!(client.get(7, &mut page).unwrap());
//! assert_eq!(page, vec![0xAB; 4096]);
//! println!("{}", client.stats().unwrap()); // Prometheus text
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub(crate) mod conn;
pub mod event;
pub mod frame;
pub mod pool;
pub mod proto;
pub(crate) mod reactor;
pub mod service;

pub use client::{Client, ClientError, Pipeline, RetryPolicy};
pub use event::BackendKind;
pub use proto::{Opcode, ProtoError, Request, Response, Status};
pub use service::Service;

use cc_core::store::CompressedStore;
use pool::WorkerPool;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Which serving engine a [`Server`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerBackend {
    /// Blocking fixed worker pool: one thread per in-flight connection.
    #[default]
    Threaded,
    /// Readiness-based event loop on the platform backend (epoll on
    /// Linux).
    Evented,
    /// The event loop forced onto the portable poll(2) backend — for
    /// tests and A/B runs exercising the fallback path.
    EventedPoll,
}

impl ServerBackend {
    /// Parse a CLI-style backend name (`threaded`, `evented`,
    /// `evented-poll`).
    pub fn parse(s: &str) -> Option<ServerBackend> {
        match s {
            "threaded" => Some(ServerBackend::Threaded),
            "evented" => Some(ServerBackend::Evented),
            "evented-poll" => Some(ServerBackend::EventedPoll),
            _ => None,
        }
    }

    /// The CLI-style name (`threaded` / `evented` / `evented-poll`).
    pub fn name(self) -> &'static str {
        match self {
            ServerBackend::Threaded => "threaded",
            ServerBackend::Evented => "evented",
            ServerBackend::EventedPoll => "evented-poll",
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Which engine serves connections.
    pub backend: ServerBackend,
    /// Worker threads (threaded backend); each serves one connection at
    /// a time. This is the hard concurrency bound of the threaded
    /// service.
    pub workers: usize,
    /// Connections admitted beyond the worker count (threaded backend;
    /// they wait for the next free worker). `0` (the default) admits
    /// exactly `workers` connections; the next one is answered `BUSY`.
    pub backlog: usize,
    /// Admission cap of the evented backend: connections registered
    /// with the reactor at once. The next accept beyond it is answered
    /// `BUSY`.
    pub max_conns: usize,
    /// Ceiling on a request frame body; a length prefix above this is
    /// malformed and closes the connection.
    pub max_frame_bytes: usize,
    /// A connection with no new frame for this long is closed.
    pub idle_timeout: Duration,
    /// Per-connection buffers above this capacity are shrunk back once
    /// they empty, so a burst of max-size frames doesn't pin worst-case
    /// memory per connection. `0` disables shrinking.
    pub buffer_high_water: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            backend: ServerBackend::default(),
            workers: 4,
            backlog: 0,
            max_conns: 1024,
            max_frame_bytes: frame::DEFAULT_MAX_FRAME,
            idle_timeout: Duration::from_secs(30),
            buffer_high_water: 64 << 10,
        }
    }
}

impl ServerConfig {
    /// Choose the serving engine.
    pub fn with_backend(mut self, backend: ServerBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Override the worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Override the admission backlog (threaded backend).
    pub fn with_backlog(mut self, backlog: usize) -> Self {
        self.backlog = backlog;
        self
    }

    /// Override the evented backend's connection cap (clamped to at
    /// least 1).
    pub fn with_max_conns(mut self, max_conns: usize) -> Self {
        self.max_conns = max_conns.max(1);
        self
    }

    /// Override the frame-size ceiling.
    pub fn with_max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes.max(frame::LEN_PREFIX);
        self
    }

    /// Override the idle-connection timeout.
    pub fn with_idle_timeout(mut self, t: Duration) -> Self {
        self.idle_timeout = t;
        self
    }

    /// Override the per-connection buffer high-water mark (`0`
    /// disables shrinking).
    pub fn with_buffer_high_water(mut self, bytes: usize) -> Self {
        self.buffer_high_water = bytes;
        self
    }
}

/// The engine-specific half of a running server.
enum Engine {
    Threaded {
        accept: Option<JoinHandle<()>>,
        pool: Option<WorkerPool>,
    },
    Evented {
        reactor: Option<JoinHandle<()>>,
        waker: event::WakeHandle,
    },
}

/// A running cache server. Dropping it (or calling
/// [`Server::shutdown`]) stops accepting, drains in-flight requests,
/// joins every thread, and flushes the store's spill writer.
pub struct Server {
    service: Arc<Service>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    engine: Mutex<Engine>,
}

/// How often the threaded accept loop polls the shutdown flag while no
/// connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start the
    /// configured engine.
    pub fn spawn(
        store: Arc<CompressedStore>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let cfg = Arc::new(ServerConfig {
            workers: cfg.workers.max(1),
            max_conns: cfg.max_conns.max(1),
            ..cfg
        });
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let (service, engine) = match cfg.backend {
            ServerBackend::Threaded => {
                let service = Arc::new(Service::new(Arc::clone(&store), cfg.workers));
                let engine = spawn_threaded(
                    listener,
                    Arc::clone(&service),
                    Arc::clone(&cfg),
                    Arc::clone(&shutdown),
                )?;
                (service, engine)
            }
            ServerBackend::Evented | ServerBackend::EventedPoll => {
                // One stripe for the reactor thread, plus the extra
                // stripe `Service::new` reserves for admission.
                let service = Arc::new(Service::new(Arc::clone(&store), 1));
                let kind = match cfg.backend {
                    ServerBackend::EventedPoll => BackendKind::Poll,
                    _ => BackendKind::Platform,
                };
                let (reactor, waker) = reactor::Reactor::new(
                    kind,
                    listener,
                    Arc::clone(&service),
                    Arc::clone(&cfg),
                    Arc::clone(&shutdown),
                )?;
                let handle = std::thread::Builder::new()
                    .name("cc-server-reactor".into())
                    .spawn(move || reactor.run())
                    .expect("spawn reactor");
                (
                    service,
                    Engine::Evented {
                        reactor: Some(handle),
                        waker,
                    },
                )
            }
        };

        Ok(Server {
            service,
            local_addr,
            shutdown,
            engine: Mutex::new(engine),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared service state: wire telemetry, open-connection gauge,
    /// the store handle, and the STATS renderer.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Graceful shutdown: stop accepting, let every in-flight request
    /// complete and its response flush, join all threads, then drain
    /// the store's spill writer. Idempotent via [`Drop`].
    pub fn shutdown(self) {
        // Drop runs the teardown.
    }

    fn shutdown_inner(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        match &mut *self.engine.lock().expect("engine poisoned") {
            Engine::Threaded { accept, pool } => {
                if let Some(h) = accept.take() {
                    let _ = h.join();
                }
                if let Some(mut p) = pool.take() {
                    p.join();
                }
            }
            Engine::Evented { reactor, waker } => {
                waker.wake();
                if let Some(h) = reactor.take() {
                    let _ = h.join();
                }
            }
        }
        // The paper's cleaner must not be left with queued work: an
        // orderly server exit leaves every accepted PUT durable. A dead
        // writer (degraded store) already reverted the pending entries
        // to memory; nothing more a teardown can do about it.
        let _ = self.service.store().flush();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Start the blocking engine: nonblocking accept loop + worker pool.
fn spawn_threaded(
    listener: TcpListener,
    service: Arc<Service>,
    cfg: Arc<ServerConfig>,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<Engine> {
    // Non-blocking accept + short poll: the loop notices the shutdown
    // flag without needing a wake-up connection.
    listener.set_nonblocking(true)?;
    let pool = WorkerPool::new(
        Arc::clone(&service),
        Arc::clone(&cfg),
        Arc::clone(&shutdown),
    );
    let accept = {
        // The accept thread owns this dispatcher (and its sender
        // clone); it drops when the thread exits, which (with the
        // pool's own sender dropped in join) is what disconnects the
        // workers.
        let dispatcher = pool.dispatcher();
        let busy_stripe = cfg.workers; // the accept loop's own counter stripe
        std::thread::Builder::new()
            .name("cc-server-accept".into())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if let Err(stream) = dispatcher.try_dispatch(stream) {
                            reject_busy(&service, busy_stripe, stream);
                        }
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        if shutdown.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        if shutdown.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(ACCEPT_POLL);
                    }
                }
            })
            .expect("spawn accept loop")
    };
    Ok(Engine::Threaded {
        accept: Some(accept),
        pool: Some(pool),
    })
}

/// Answer `BUSY` (unsolicited tag 0) on a connection the pool could not
/// admit, then close. The write is best-effort; the rejection is always
/// counted.
fn reject_busy(service: &Service, stripe: usize, mut stream: std::net::TcpStream) {
    let conn_id = service.next_conn_id();
    service.busy_rejected(stripe, conn_id);
    let mut body = Vec::with_capacity(1);
    Response {
        status: Status::Busy,
        payload: &[],
    }
    .encode(&mut body);
    let _ = frame::write_frame(&mut stream, frame::SEQ_UNSOLICITED, &body);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}
