//! Pipelining hardening: property tests over tagged bursts.
//!
//! The pipelined protocol's safety claim is *split-independence*: a
//! burst of tagged frames round-trips exactly once per tag no matter
//! how the byte stream is fragmented in flight — TCP may deliver any
//! prefix at any time — and no fragmentation can be mistaken for a
//! malformed frame. Three layers pin it:
//!
//! 1. **Request side, pure** — a burst serialized and re-fed through
//!    [`frame::parse_frame`] at arbitrary chunk boundaries (down to
//!    single bytes) surfaces every frame exactly once, in order, with
//!    the right tag and body, and never errors.
//! 2. **Response side, pure** — responses arriving in *any completion
//!    order* (arbitrary permutation) reap an outstanding-tag window
//!    exactly once each, whatever the fragmentation.
//! 3. **Live** — the same property against a real evented server on
//!    loopback: dribbled writes of a pipelined burst come back as one
//!    tagged response per request, byte-for-byte correct.

use cc_server::frame;
use cc_server::proto::{Request, Response, Status};
use cc_server::{Server, ServerBackend, ServerConfig};
use proptest::prelude::*;
use std::collections::HashSet;
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// A request in a generated burst: `(key, op)` where op 0 = PUT,
/// 1 = GET, 2 = PING. Pages are derived from the key.
type BurstOp = (u64, u8);

fn burst_strategy() -> impl Strategy<Value = Vec<BurstOp>> {
    proptest::collection::vec((any::<u64>(), 0u8..3), 1..10)
}

/// Chunk sizes used to fragment a wire image (cycled; 1-byte splits
/// included).
fn splits_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..48, 1..32)
}

// The store pins its page size at the first PUT, so every generated
// page is the same length; content still varies by key.
fn page_for(key: u64) -> Vec<u8> {
    let mut page = vec![0u8; 512];
    let mut x = key | 1;
    for b in page.iter_mut() {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *b = (x >> 33) as u8;
    }
    page
}

/// Serialize `burst` as tagged request frames, tags `first_seq..`.
fn burst_wire(burst: &[BurstOp], first_seq: u32) -> Vec<u8> {
    let mut wire = Vec::new();
    let mut body = Vec::new();
    for (i, &(key, op)) in burst.iter().enumerate() {
        body.clear();
        let page;
        let req = match op {
            0 => {
                page = page_for(key);
                Request::Put { key, page: &page }
            }
            1 => Request::Get { key },
            _ => Request::Ping,
        };
        req.encode(&mut body);
        frame::write_frame(&mut wire, first_seq + i as u32, &body).unwrap();
    }
    wire
}

/// Feed `wire` through an accumulation buffer in `splits`-sized chunks,
/// returning every parsed `(seq, body)` in surfacing order.
fn parse_fragmented(wire: &[u8], splits: &[usize]) -> Result<Vec<(u32, Vec<u8>)>, String> {
    let mut acc: Vec<u8> = Vec::new();
    let mut out = Vec::new();
    let mut pos = 0;
    let mut split_i = 0;
    while pos < wire.len() {
        let take = splits[split_i % splits.len()].min(wire.len() - pos);
        split_i += 1;
        acc.extend_from_slice(&wire[pos..pos + take]);
        pos += take;
        loop {
            match frame::parse_frame(&acc, frame::DEFAULT_MAX_FRAME) {
                Ok(Some(p)) => {
                    out.push((p.seq, acc[p.body.clone()].to_vec()));
                    acc.drain(..p.consumed);
                }
                Ok(None) => break,
                Err(e) => return Err(format!("false malformed at byte {pos}: {e}")),
            }
        }
    }
    if !acc.is_empty() {
        return Err(format!("{} bytes left unparsed", acc.len()));
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Request side: any fragmentation of a pipelined burst surfaces
    /// every frame exactly once, in order, tags and bodies intact — and
    /// never trips a malformed-frame error.
    #[test]
    fn any_split_roundtrips_burst(
        burst in burst_strategy(),
        splits in splits_strategy(),
        first_seq in 1u32..1_000_000,
    ) {
        let wire = burst_wire(&burst, first_seq);
        let parsed = parse_fragmented(&wire, &splits)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        prop_assert_eq!(parsed.len(), burst.len());
        for (i, ((seq, body), &(key, op))) in parsed.iter().zip(&burst).enumerate() {
            prop_assert_eq!(*seq, first_seq + i as u32, "tag order broken");
            let decoded = Request::decode(body).expect("body survived fragmentation");
            match (op, decoded) {
                (0, Request::Put { key: k, page }) => {
                    prop_assert_eq!(k, key);
                    prop_assert_eq!(page, &page_for(key)[..]);
                }
                (1, Request::Get { key: k }) => prop_assert_eq!(k, key),
                (2, Request::Ping) => {}
                (want, got) => prop_assert!(false, "op {} decoded as {:?}", want, got),
            }
        }
    }

    /// Response side: tagged responses arriving in *any completion
    /// order* and any fragmentation reap the outstanding window exactly
    /// once per tag.
    #[test]
    fn any_completion_order_reaps_exactly_once(
        n in 1usize..12,
        shuffle in proptest::collection::vec(any::<u32>(), 12..13),
        splits in splits_strategy(),
    ) {
        // Arbitrary completion order from the shuffle seeds.
        let mut order: Vec<u32> = (1..=n as u32).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, shuffle[i % shuffle.len()] as usize % (i + 1));
        }
        // Serialize responses in that order.
        let mut wire = Vec::new();
        let mut body = Vec::new();
        for &seq in &order {
            body.clear();
            let payload = seq.to_le_bytes();
            Response { status: Status::Ok, payload: &payload }.encode(&mut body);
            frame::write_frame(&mut wire, seq, &body).unwrap();
        }
        // Reap through fragmentation: every tag exactly once.
        let parsed = parse_fragmented(&wire, &splits)
            .map_err(proptest::test_runner::TestCaseError::fail)?;
        let mut outstanding: HashSet<u32> = (1..=n as u32).collect();
        prop_assert_eq!(parsed.len(), n);
        for (seq, rbody) in &parsed {
            prop_assert!(outstanding.remove(seq), "tag {} reaped twice or unknown", seq);
            let resp = Response::decode(rbody).expect("response decodes");
            prop_assert_eq!(resp.status, Status::Ok);
            prop_assert_eq!(resp.payload, &seq.to_le_bytes()[..]);
        }
        prop_assert!(outstanding.is_empty());
    }

    /// Live: a dribbled pipelined burst against a real evented server
    /// round-trips one tagged response per request, byte-for-byte.
    #[test]
    fn live_evented_server_roundtrips_dribbled_burst(
        ops in proptest::collection::vec(0u8..2, 1..8),
        splits in splits_strategy(),
    ) {
        let addr = *shared_server();
        // Unique keys per case: cases share one server and store.
        static NEXT_KEY: AtomicU64 = AtomicU64::new(0);
        let base = NEXT_KEY.fetch_add(ops.len() as u64, Ordering::Relaxed);

        // PUT every key first (tags 1..), then the generated op mix
        // (tags n+1..): GETs must hit and verify.
        let mut burst: Vec<BurstOp> = (0..ops.len())
            .map(|i| (base + i as u64, 0u8))
            .collect();
        for (i, &op) in ops.iter().enumerate() {
            burst.push((base + i as u64, op + 1)); // 1 = GET, 2 = PING
        }
        let wire = burst_wire(&burst, 1);

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        // Dribble the burst in fragments, reaping opportunistically is
        // not needed: bursts here are far below the backpressure cap.
        let mut pos = 0;
        let mut split_i = 0;
        while pos < wire.len() {
            let take = splits[split_i % splits.len()].min(wire.len() - pos);
            split_i += 1;
            stream.write_all(&wire[pos..pos + take]).unwrap();
            stream.flush().unwrap();
            pos += take;
        }
        // Reap: every tag exactly once, payloads exact.
        let mut outstanding: HashSet<u32> = (1..=burst.len() as u32).collect();
        let mut body = Vec::new();
        for _ in 0..burst.len() {
            let seq = frame::read_frame(&mut stream, &mut body, frame::DEFAULT_MAX_FRAME)
                .expect("tagged response");
            prop_assert!(outstanding.remove(&seq), "tag {} reaped twice or unknown", seq);
            let resp = Response::decode(&body).expect("response decodes");
            prop_assert_eq!(resp.status, Status::Ok, "tag {} failed", seq);
            let (key, op) = burst[(seq - 1) as usize];
            if op == 1 {
                prop_assert_eq!(
                    resp.payload,
                    &page_for(key)[..],
                    "GET({}) corrupted under pipelining", key
                );
            }
        }
        prop_assert!(outstanding.is_empty());
    }
}

/// One evented server shared by every live case (leaked: the process
/// exit is its teardown).
fn shared_server() -> &'static SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    ADDR.get_or_init(|| {
        use cc_core::store::{CompressedStore, StoreConfig};
        use std::sync::Arc;
        let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(64 << 20)));
        let server = Server::spawn(
            store,
            "127.0.0.1:0",
            ServerConfig::default().with_backend(ServerBackend::Evented),
        )
        .expect("spawn shared evented server");
        let addr = server.local_addr();
        std::mem::forget(server);
        addr
    })
}
