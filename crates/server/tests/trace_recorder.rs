//! Flight-recorder integration: deterministic anomalies must produce
//! dumps that name the failing connection/extent, and a sampled request
//! must yield a complete causal span tree from the wire to the store.
//!
//! Determinism notes: the corruption test scripts `ReadCorrupt` on
//! *every* early medium operation (a read fault at a write index passes
//! through harmlessly), so the first spill read fails its CRC check on
//! every retry regardless of scheduling; the stall test drives the
//! evented backend's write-backpressure park with a peer that provably
//! never reads, so the no-progress window elapses unconditionally.

use cc_core::medium::{Fault, FaultInjector, FaultPlan, FileMedium};
use cc_core::store::{CompressedStore, StoreConfig, StoreError};
use cc_server::frame;
use cc_server::proto::Request;
use cc_server::{Client, Server, ServerBackend, ServerConfig};
use cc_telemetry::trace::{orphan_spans, sop, AnomalyKind, Tracer};
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const PAGE: usize = 4096;

/// A page that compresses well (the store keeps it compressed).
fn text_page(tag: u64) -> Vec<u8> {
    let mut p = vec![0u8; PAGE];
    for (i, b) in p.iter_mut().enumerate() {
        *b = ((tag as usize + i / 9) % 47) as u8 + b' ';
    }
    p
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("cc-trace-{name}-{}.bin", std::process::id()))
}

/// A scripted spill-read corruption produces an automatic dump whose
/// span tree and anomaly row name the failing key and extent offset —
/// the acceptance scenario of the flight recorder.
#[test]
fn scripted_corruption_triggers_dump_naming_the_extent() {
    let tracer = Arc::new(Tracer::builder().sample_every(1).sink_memory().build());
    let path = temp_path("corrupt");
    let _ = std::fs::remove_file(&path);
    // Corrupt every read among the first 4096 medium operations; writes
    // at those indices are untouched, so the spill file itself is fine
    // and the fault is a deterministic transfer-side bit flip.
    let plan = FaultPlan {
        script: (0..4096).map(|i| (i, Fault::ReadCorrupt)).collect(),
        ..FaultPlan::quiet()
    };
    let medium = FaultInjector::new(FileMedium::create(&path).expect("spill file"), plan);
    // A small budget so most of the working set spills.
    let cfg = StoreConfig::with_spill(16 << 10, &path).with_tracer(Arc::clone(&tracer));
    let store = CompressedStore::with_medium(cfg, Arc::new(medium));

    for key in 0..64u64 {
        store
            .put_traced(key, &text_page(key), tracer.sample())
            .expect("put");
    }
    store.flush().expect("flush");

    // Read until a spilled entry surfaces the corruption.
    let mut out = vec![0u8; PAGE];
    let mut failing_key = None;
    for key in 0..64u64 {
        match store.get_traced(key, &mut out, tracer.sample()) {
            Ok(_) => {}
            Err(StoreError::Corrupt) => {
                failing_key = Some(key);
                break;
            }
            Err(e) => panic!("unexpected store error {e:?}"),
        }
    }
    let failing_key = failing_key.expect("every spill read was corrupted; one must surface");

    assert!(
        tracer.dumps_written() >= 1,
        "corruption must auto-dump the flight recorder"
    );
    let dumps = tracer.dumps();
    let dump = dumps.last().expect("memory sink holds the dump");
    assert!(
        dump.contains("\"kind\": \"corrupt\""),
        "dump must carry the corrupt anomaly: {dump}"
    );
    // The anomaly row names the failing key (a) — and the span tree
    // shows the failed spill read under the sampled get.
    assert!(
        dump.contains(&format!("\"a\": {failing_key}")),
        "dump must name failing key {failing_key}"
    );
    assert!(
        dump.contains("\"op\": \"spill_read\""),
        "missing spill_read span"
    );
    // The auto dump is written from inside the failing get (the parent
    // span closes after the error propagates), so the completed tree is
    // asserted on a post-mortem dump.
    let post = tracer.dump_json("post-mortem");
    assert!(post.contains("\"op\": \"store_get\""), "missing get span");
    // The corrupt anomaly is attributed to the sampled trace.
    let anomalies = tracer.anomalies();
    let corrupt = anomalies
        .iter()
        .find(|a| a.kind == AnomalyKind::Corrupt)
        .expect("corrupt anomaly recorded");
    assert_eq!(corrupt.a, failing_key);
    assert_ne!(corrupt.trace_id, 0, "corruption must name the trace");
    // Every sampled span resolves its parent (rings have not wrapped).
    assert!(!tracer.wrapped(), "test sized the rings to hold all spans");
    assert_eq!(orphan_spans(&tracer.spans()), 0, "orphan spans in tree");

    store.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// A peer that pipelines GETs for a large page but never reads its
/// responses parks behind write backpressure; once the staged output
/// makes no progress for the stall window, the reactor fires a
/// backpressure-stall anomaly naming the connection, and the recorder
/// dumps.
#[test]
fn backpressure_stall_fires_anomaly_and_dump() {
    let tracer = Arc::new(
        Tracer::builder()
            .sample_every(1)
            .sink_memory()
            .stall_after(Duration::from_millis(150))
            .build(),
    );
    let store = Arc::new(CompressedStore::new(
        StoreConfig::in_memory(8 << 20).with_tracer(Arc::clone(&tracer)),
    ));
    let server = Server::spawn(
        Arc::clone(&store),
        "127.0.0.1:0",
        ServerConfig::default().with_backend(ServerBackend::Evented),
    )
    .expect("spawn server");

    // Seed one 512 KB page through a normal client.
    let page: Vec<u8> = (0..512 << 10)
        .map(|i| ((i / 13) % 61) as u8 + b' ')
        .collect();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.put(1, &page).expect("put");

    // Raw connection: pipeline 64 GETs (≈32 MB of responses) and never
    // read. The staged output crosses the 1 MiB backpressure cap and
    // then cannot drain — the definition of a stall.
    let mut sock = TcpStream::connect(server.local_addr()).expect("raw connect");
    let mut body = Vec::new();
    for seq in 1..=64u32 {
        body.clear();
        Request::Get { key: 1 }.encode(&mut body);
        frame::write_frame(&mut sock, seq, &body).expect("pipeline GET");
    }
    sock.flush().expect("flush");

    let deadline = Instant::now() + Duration::from_secs(10);
    let stall = loop {
        if let Some(a) = tracer
            .anomalies()
            .iter()
            .find(|a| a.kind == AnomalyKind::BackpressureStall)
            .copied()
        {
            break a;
        }
        assert!(
            Instant::now() < deadline,
            "no backpressure-stall anomaly within 10s; anomalies: {:?}",
            tracer.anomalies()
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    // The anomaly names the parked connection and its pending bytes.
    assert!(
        stall.b >= 1 << 20,
        "stall pending bytes {} below the backpressure cap",
        stall.b
    );
    assert!(
        tracer
            .dumps()
            .iter()
            .any(|d| d.contains("\"kind\": \"backpressure_stall\"")),
        "stall must auto-dump the recorder"
    );
    drop(sock);
    drop(client);
    server.shutdown();
}

/// The DUMP opcode returns the recorder over the wire, the sampled
/// request span tree is complete (wire root → store children), and an
/// untraced server answers a valid empty document.
#[test]
fn dump_opcode_and_span_tree_end_to_end() {
    let tracer = Arc::new(Tracer::builder().sample_every(1).sink_memory().build());
    let store = Arc::new(CompressedStore::new(
        StoreConfig::in_memory(8 << 20).with_tracer(Arc::clone(&tracer)),
    ));
    let server = Server::spawn(Arc::clone(&store), "127.0.0.1:0", ServerConfig::default())
        .expect("spawn server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let mut buf = vec![0u8; PAGE];
    for key in 0..8u64 {
        client.put(key, &text_page(key)).expect("put");
        assert!(client.get(key, &mut buf).expect("get"), "key {key} missing");
    }
    let dump = client.dump().expect("DUMP");
    assert!(dump.contains("\"reason\": \"on-demand\""), "{dump}");
    assert!(dump.contains("\"sample_every\": 1"), "{dump}");
    assert!(dump.contains("\"op\": \"request\""), "missing wire root");
    assert!(dump.contains("\"op\": \"store_put\""), "missing put child");
    assert!(dump.contains("\"op\": \"store_get\""), "missing get child");
    assert!(dump.contains("\"op\": \"reply_flush\""), "missing flush");

    // Structural check, not just names: every sampled request resolves
    // into one rooted tree — a store child's parent is the wire root.
    let spans = tracer.spans();
    assert!(!tracer.wrapped());
    assert_eq!(orphan_spans(&spans), 0, "incomplete span tree");
    let get = spans
        .iter()
        .find(|s| s.op == sop::STORE_GET)
        .expect("sampled get span");
    let root = spans
        .iter()
        .find(|s| s.trace_id == get.trace_id && s.span_id == get.parent)
        .expect("get's parent span exists");
    assert_eq!(root.op, sop::REQUEST, "store_get must hang off the root");
    assert_eq!(root.parent, 0, "request span is the root");
    server.shutdown();

    // Untraced server: DUMP still answers, with an empty document.
    let plain = Arc::new(CompressedStore::new(StoreConfig::in_memory(1 << 20)));
    let server = Server::spawn(plain, "127.0.0.1:0", ServerConfig::default()).expect("spawn");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(client.dump().expect("DUMP"), "{}");
    server.shutdown();
}
