//! End-to-end tests against a live `cc-server` on loopback.
//!
//! Covers the service-layer contract the unit tests cannot: concurrent
//! integrity under a mixed workload (every GET verified against a
//! shadow model, the store budget watched throughout), saturation
//! answering `BUSY` with the rejection visible in the wire counters,
//! each malformed-input class closing the connection with `ERR` without
//! panicking the engine, wall-clock idle-timeout reaping, pipelined
//! windows round-tripping tagged responses, STATS being a parseable
//! Prometheus payload, graceful shutdown leaving the store flushed and
//! readable — and the `open_connections` gauge returning to zero on
//! every path.
//!
//! Where the contract is backend-independent, the same scenario runs
//! against the threaded pool, the epoll reactor, and the poll(2)
//! fallback reactor.

use cc_core::store::{CompressedStore, StoreConfig};
use cc_server::frame::{self, FrameError};
use cc_server::proto::Request;
use cc_server::{
    Client, ClientError, Pipeline, Response, Server, ServerBackend, ServerConfig, Status,
};
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const PAGE: usize = 1024;

/// Every engine the integration contract must hold on.
const ALL_BACKENDS: [ServerBackend; 3] = [
    ServerBackend::Threaded,
    ServerBackend::Evented,
    ServerBackend::EventedPoll,
];

/// Deterministic page content for `(key, version)`; half the versions
/// compress well, the rest are noise.
fn fill_page(key: u64, version: u64, buf: &mut [u8]) {
    let salt =
        key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ version.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    if version.is_multiple_of(2) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = ((salt as usize + i / 7) % 61) as u8 + b' ';
        }
    } else {
        let mut x = salt | 1;
        for b in buf.iter_mut() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (x >> 33) as u8;
        }
    }
}

fn spill_server(budget: usize, cfg: ServerConfig, tag: &str) -> (Server, Arc<CompressedStore>) {
    let path =
        std::env::temp_dir().join(format!("cc-server-test-{tag}-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let store = Arc::new(CompressedStore::new(StoreConfig::with_spill(budget, &path)));
    let server = Server::spawn(Arc::clone(&store), "127.0.0.1:0", cfg).expect("spawn server");
    (server, store)
}

/// Shut the server down and assert the satellite invariant: every
/// opened connection was closed — the gauge is zero and the counters
/// balance.
fn shutdown_and_check_gauge(server: Server, what: &str) {
    let service = Arc::clone(server.service());
    server.shutdown();
    assert_eq!(
        service.open_connections(),
        0,
        "{what}: open_connections gauge leaked"
    );
    let snap = service.snapshot();
    assert_eq!(
        snap.counter("conns_opened"),
        snap.counter("conns_closed"),
        "{what}: open/close counters unbalanced"
    );
}

/// 4 client threads × mixed ops, every GET checked byte-for-byte
/// against a per-thread shadow map, zero mismatches, and the store's
/// resident bytes never exceed the budget.
fn mixed_load(backend: ServerBackend, ops: u64, tag: &str) {
    const THREADS: usize = 4;
    const KEYS_PER_THREAD: u64 = 256;
    const BUDGET: usize = 256 << 10; // well under the working set: spill exercised

    let (server, store) = spill_server(
        BUDGET,
        ServerConfig::default()
            .with_backend(backend)
            .with_workers(THREADS),
        tag,
    );
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let watcher = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut max_seen = 0u64;
            while !stop.load(Ordering::Relaxed) {
                max_seen = max_seen.max(store.stats().resident_bytes);
            }
            max_seen
        })
    };

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client
                    .set_timeout(Some(Duration::from_secs(30)))
                    .expect("timeout");
                let base = t as u64 * KEYS_PER_THREAD;
                let mut shadow: HashMap<u64, u64> = HashMap::new();
                let mut version = 0u64;
                let mut rng = t as u64 + 1;
                let mut page = vec![0u8; PAGE];
                let mut expect = vec![0u8; PAGE];
                let mut out = Vec::with_capacity(PAGE);
                let mut next = || {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    rng >> 33
                };
                for op in 0..ops {
                    let key = base + next() % KEYS_PER_THREAD;
                    match next() % 10 {
                        0..=4 => {
                            version += 1;
                            fill_page(key, version, &mut page);
                            client.put(key, &page).expect("put");
                            shadow.insert(key, version);
                        }
                        5..=8 => {
                            let hit = client.get(key, &mut out).expect("get");
                            match (hit, shadow.get(&key).copied()) {
                                (true, Some(v)) => {
                                    fill_page(key, v, &mut expect);
                                    assert_eq!(
                                        out, expect,
                                        "thread {t} op {op}: GET({key}) returned wrong bytes"
                                    );
                                }
                                (false, None) => {}
                                (hit, expected) => panic!(
                                    "thread {t} op {op}: GET({key}) hit={hit} but shadow={expected:?}"
                                ),
                            }
                        }
                        _ => {
                            let existed = client.del(key).expect("del");
                            assert_eq!(
                                existed,
                                shadow.remove(&key).is_some(),
                                "thread {t} op {op}: DEL({key}) existed-bit disagrees with shadow"
                            );
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread panicked");
    }
    stop.store(true, Ordering::Relaxed);
    let max_resident = watcher.join().expect("watcher panicked");
    assert!(
        max_resident <= BUDGET as u64,
        "store budget exceeded under load: saw {max_resident} resident bytes, budget {BUDGET}"
    );

    let snap = server.service().snapshot();
    let wire = |n: &str| snap.counter(n).unwrap_or(0);
    assert_eq!(wire("malformed_frames"), 0);
    assert_eq!(wire("busy_rejected"), 0);
    assert_eq!(wire("conns_opened"), THREADS as u64);
    assert_eq!(
        wire("req_put") + wire("req_get") + wire("req_del"),
        THREADS as u64 * ops
    );
    assert_eq!(snap.event_count("conn_open"), Some(THREADS as u64));
    shutdown_and_check_gauge(server, tag);
}

#[test]
fn concurrent_integrity_under_mixed_load() {
    mixed_load(ServerBackend::Threaded, 10_000, "integrity");
}

#[test]
fn concurrent_integrity_evented_backend() {
    mixed_load(ServerBackend::Evented, 5_000, "integrity-ev");
}

/// Reads one response frame (with its tag) off a raw connection.
fn read_response(stream: &mut TcpStream) -> Result<(u32, Status, Vec<u8>), FrameError> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut body = Vec::new();
    let seq = frame::read_frame(stream, &mut body, frame::DEFAULT_MAX_FRAME)?;
    let resp = Response::decode(&body).expect("response decodes");
    Ok((seq, resp.status, resp.payload.to_vec()))
}

/// Saturation is bounded and observable: with one worker occupied and a
/// zero backlog, the next connection is answered `BUSY` (unsolicited
/// tag 0) and the rejection shows up in both the counter and the event
/// ring.
#[test]
fn saturated_pool_answers_busy() {
    let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(4 << 20)));
    let server = Server::spawn(
        store,
        "127.0.0.1:0",
        ServerConfig::default().with_workers(1).with_backlog(0),
    )
    .expect("spawn server");
    let addr = server.local_addr();

    // Occupy the only worker; the completed PING proves the connection
    // was admitted and is being served.
    let mut holder = Client::connect(addr).expect("connect holder");
    holder.ping().expect("ping");

    // The pool is now full: the next connection must be told BUSY. The
    // server writes the frame unsolicited and closes, so read directly.
    let mut extra = TcpStream::connect(addr).expect("connect extra");
    let (seq, status, payload) = read_response(&mut extra).expect("read BUSY frame");
    assert_eq!(seq, frame::SEQ_UNSOLICITED, "BUSY must carry tag 0");
    assert_eq!(status, Status::Busy);
    assert!(payload.is_empty());
    let mut rest = Vec::new();
    assert!(
        matches!(
            frame::read_frame(&mut extra, &mut rest, frame::DEFAULT_MAX_FRAME),
            Err(FrameError::Closed)
        ),
        "rejected connection should be closed after BUSY"
    );

    // A Client sees the same thing as ClientError::Busy.
    match Client::connect(addr).expect("connect second extra").ping() {
        Err(ClientError::Busy) => {}
        // The unsolicited BUSY + close can race the client's write into
        // an I/O error on some kernels; the counters below still pin
        // that both rejections happened server-side.
        Err(ClientError::Io(_)) => {}
        other => panic!("expected BUSY, got {other:?}"),
    }

    let snap = server.service().snapshot();
    assert_eq!(snap.counter("busy_rejected"), Some(2));
    assert_eq!(snap.event_count("busy"), Some(2));
    assert_eq!(snap.counter("malformed_frames"), Some(0));

    // The held connection still works: rejection never hurts admitted
    // traffic.
    holder.ping().expect("holder still served");
    drop(holder);
    shutdown_and_check_gauge(server, "saturated pool");
}

/// The evented engine's counted admission: with `max_conns = 1` and one
/// connection registered, the next accept is answered `BUSY` (tag 0)
/// and closed — and admitted traffic is untouched.
#[test]
fn evented_admission_answers_busy() {
    for backend in [ServerBackend::Evented, ServerBackend::EventedPoll] {
        let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(4 << 20)));
        let server = Server::spawn(
            store,
            "127.0.0.1:0",
            ServerConfig::default()
                .with_backend(backend)
                .with_max_conns(1),
        )
        .expect("spawn server");
        let addr = server.local_addr();

        let mut holder = Client::connect(addr).expect("connect holder");
        holder.ping().expect("ping");

        let mut extra = TcpStream::connect(addr).expect("connect extra");
        let (seq, status, payload) = read_response(&mut extra).expect("read BUSY frame");
        assert_eq!(seq, frame::SEQ_UNSOLICITED, "BUSY must carry tag 0");
        assert_eq!(status, Status::Busy, "{backend:?}");
        assert!(payload.is_empty());
        let mut rest = Vec::new();
        assert!(
            matches!(
                frame::read_frame(&mut extra, &mut rest, frame::DEFAULT_MAX_FRAME),
                Err(FrameError::Closed)
            ),
            "{backend:?}: rejected connection should be closed after BUSY"
        );

        let snap = server.service().snapshot();
        assert_eq!(snap.counter("busy_rejected"), Some(1), "{backend:?}");
        assert_eq!(snap.event_count("busy"), Some(1), "{backend:?}");

        // Releasing the held slot frees admission for the next client.
        holder.ping().expect("holder still served");
        drop(holder);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match Client::connect(addr).and_then_ping() {
                Ok(()) => break,
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => panic!("{backend:?}: slot never freed after close: {e}"),
            }
        }
        shutdown_and_check_gauge(server, "evented admission");
    }
}

/// Small helper so the retry loop above reads cleanly.
trait AndThenPing {
    fn and_then_ping(self) -> Result<(), ClientError>;
}
impl AndThenPing for std::io::Result<Client> {
    fn and_then_ping(self) -> Result<(), ClientError> {
        let mut c = self.map_err(ClientError::Io)?;
        c.ping()
    }
}

/// The client's bounded retry-with-backoff rides out a saturation
/// window. With one worker held busy, a no-retry client gets `BUSY`
/// immediately; a retrying client keeps reconnecting with backoff and
/// succeeds once the holder releases the worker — within the policy's
/// `max_backoff_total` bound (plus I/O slack). A retrying client
/// against a *permanently* saturated pool still fails, in bounded time.
#[test]
fn client_retry_rides_out_saturation() {
    let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(4 << 20)));
    let server = Server::spawn(
        store,
        "127.0.0.1:0",
        ServerConfig::default().with_workers(1).with_backlog(0),
    )
    .expect("spawn server");
    let addr = server.local_addr();

    // Occupy the only worker (the completed PING proves admission).
    let holder = {
        let mut c = Client::connect(addr).expect("connect holder");
        c.ping().expect("ping");
        c
    };

    // Default policy (one attempt): BUSY surfaces immediately.
    match Client::connect(addr).expect("connect no-retry").ping() {
        Err(ClientError::Busy) | Err(ClientError::Io(_)) => {}
        other => panic!("expected immediate BUSY without retry, got {other:?}"),
    }

    // Exhausted retries against a pool that never frees up: the failure
    // is still BUSY and the total wait respects the backoff bound.
    let mut capped = Client::connect(addr)
        .expect("connect capped")
        .with_retry(4, Duration::from_millis(2));
    let bound = capped.retry_policy().max_backoff_total();
    assert_eq!(bound, Duration::from_millis(2 + 4 + 8));
    let start = std::time::Instant::now();
    match capped.ping() {
        Err(ClientError::Busy) | Err(ClientError::Io(_)) => {}
        other => panic!("expected BUSY after exhausting retries, got {other:?}"),
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < bound + Duration::from_secs(5),
        "retry loop unbounded: {elapsed:?} for bound {bound:?}"
    );

    // Release the worker mid-retry: the retrying client must succeed.
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(40));
        drop(holder);
    });
    let mut retrier = Client::connect(addr)
        .expect("connect retrier")
        .with_retry(10, Duration::from_millis(10));
    let start = std::time::Instant::now();
    retrier
        .ping()
        .expect("retrying client should succeed once the pool frees up");
    let elapsed = start.elapsed();
    let bound = retrier.retry_policy().max_backoff_total() + Duration::from_secs(10);
    assert!(elapsed < bound, "retry took {elapsed:?}, bound {bound:?}");
    release.join().expect("release thread");

    // The retried connection is a normal, reusable connection.
    retrier.put(9, &vec![0x5A; PAGE]).expect("put after retry");
    let mut out = Vec::new();
    assert!(retrier.get(9, &mut out).expect("get after retry"));
    assert_eq!(out, vec![0x5A; PAGE]);
    drop(retrier);
    shutdown_and_check_gauge(server, "client retry");
}

/// Every malformed-input class on every backend: the server answers
/// `ERR`, closes the connection, bumps `malformed_frames`, and keeps
/// serving new connections (no engine panics).
#[test]
fn malformed_frames_close_with_err_and_count() {
    for backend in ALL_BACKENDS {
        let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(4 << 20)));
        let server = Server::spawn(
            store,
            "127.0.0.1:0",
            ServerConfig::default()
                .with_backend(backend)
                .with_workers(2),
        )
        .expect("spawn server");
        let addr = server.local_addr();
        let service = Arc::clone(server.service());
        let malformed = || service.snapshot().counter("malformed_frames").unwrap_or(0);

        let expect_err_then_close = |stream: &mut TcpStream, what: &str| {
            let (_seq, status, payload) = read_response(stream)
                .unwrap_or_else(|e| panic!("{backend:?} {what}: expected ERR frame, got {e}"));
            assert_eq!(status, Status::Err, "{backend:?} {what}: wrong status");
            assert!(
                !payload.is_empty(),
                "{backend:?} {what}: ERR should carry a message"
            );
            let mut rest = Vec::new();
            assert!(
                matches!(
                    frame::read_frame(stream, &mut rest, frame::DEFAULT_MAX_FRAME),
                    Err(FrameError::Closed)
                ),
                "{backend:?} {what}: connection should be closed after ERR"
            );
        };

        // Malformed frames are answered with ERR, counted, and the
        // counter classes agree with the event ring afterwards.
        {
            use std::io::Write as _;

            // 1. Truncated header: half a header, then EOF.
            let before = malformed();
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&[7, 0]).expect("write partial header");
            s.shutdown(std::net::Shutdown::Write).expect("half-close");
            expect_err_then_close(&mut s, "truncated header");
            assert_eq!(malformed(), before + 1, "truncated header not counted");

            // 2. Oversized length prefix: rejected before any body
            // allocation, as soon as the header is visible.
            let before = malformed();
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&u32::MAX.to_le_bytes()).expect("write length");
            s.write_all(&1u32.to_le_bytes()).expect("write seq");
            expect_err_then_close(&mut s, "oversized prefix");
            assert_eq!(malformed(), before + 1, "oversized prefix not counted");

            // 3. Unknown opcode: a whole, well-framed body that fails
            // decoding; the ERR echoes the frame's tag.
            let before = malformed();
            let mut s = TcpStream::connect(addr).expect("connect");
            let mut wire = Vec::new();
            frame::write_frame(&mut wire, 99, &[42]).expect("encode frame");
            s.write_all(&wire).expect("write frame");
            let (seq, status, payload) = read_response(&mut s)
                .unwrap_or_else(|e| panic!("{backend:?} unknown opcode: expected ERR, got {e}"));
            assert_eq!(seq, 99, "{backend:?}: ERR must echo the request tag");
            assert_eq!(status, Status::Err);
            assert!(!payload.is_empty());
            let mut rest = Vec::new();
            assert!(matches!(
                frame::read_frame(&mut s, &mut rest, frame::DEFAULT_MAX_FRAME),
                Err(FrameError::Closed)
            ));
            assert_eq!(malformed(), before + 1, "unknown opcode not counted");

            // 4. Truncated body: header promises more bytes than arrive.
            let before = malformed();
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&16u32.to_le_bytes()).expect("write length");
            s.write_all(&2u32.to_le_bytes()).expect("write seq");
            s.write_all(&[1, 2, 3]).expect("write partial body");
            s.shutdown(std::net::Shutdown::Write).expect("half-close");
            expect_err_then_close(&mut s, "truncated body");
            assert_eq!(malformed(), before + 1, "truncated body not counted");
        }

        // The events agree with the counter, and the server still
        // serves.
        let snap = service.snapshot();
        assert_eq!(
            snap.event_count("malformed"),
            snap.counter("malformed_frames")
        );
        let mut client = Client::connect(addr).expect("connect after abuse");
        client.ping().expect("server survived malformed input");
        client.put(1, &vec![3u8; PAGE]).expect("put works");
        let mut out = Vec::new();
        assert!(client.get(1, &mut out).expect("get works"));
        assert_eq!(out, vec![3u8; PAGE]);
        drop(client);
        shutdown_and_check_gauge(server, "malformed frames");
    }
}

/// Satellite: the idle timeout is wall-clock on every backend. A
/// connection idle for exactly `timeout + ε` is closed — the close
/// lands near the deadline, not rounded up in 20 ms read-step quanta —
/// and is counted exactly once.
#[test]
fn idle_timeout_is_wall_clock_and_counted_once() {
    const TIMEOUT: Duration = Duration::from_millis(250);
    for backend in ALL_BACKENDS {
        let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(4 << 20)));
        let server = Server::spawn(
            store,
            "127.0.0.1:0",
            ServerConfig::default()
                .with_backend(backend)
                .with_workers(1)
                .with_idle_timeout(TIMEOUT),
        )
        .expect("spawn server");
        let addr = server.local_addr();
        let service = Arc::clone(server.service());

        // Raw connection: one PING round-trip (activity), then silence.
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let mut body = Vec::new();
        Request::Ping.encode(&mut body);
        frame::write_frame(&mut s, 1, &body).expect("write ping");
        let mut resp = Vec::new();
        assert_eq!(
            frame::read_frame(&mut s, &mut resp, frame::DEFAULT_MAX_FRAME).expect("pong"),
            1
        );
        let idle_from = std::time::Instant::now();

        // The server closes from its side at timeout + ε: the blocking
        // read observes EOF. `ε` tolerances: the server's idle clock
        // started marginally before ours (it saw the frame before we
        // read the response), and CI schedulers add delay on top.
        use std::io::Read as _;
        let mut junk = [0u8; 16];
        let n = s.read(&mut junk).expect("EOF, not an error");
        let elapsed = idle_from.elapsed();
        assert_eq!(n, 0, "{backend:?}: expected server-side close");
        assert!(
            elapsed >= TIMEOUT.saturating_sub(Duration::from_millis(60)),
            "{backend:?}: closed {elapsed:?} into an idle period of {TIMEOUT:?} — too early"
        );
        assert!(
            elapsed <= TIMEOUT + Duration::from_millis(500),
            "{backend:?}: idle close took {elapsed:?}, deadline {TIMEOUT:?} — not wall-clock"
        );

        // Counted exactly once, and it stays that way.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let snap = service.snapshot();
            if snap.counter("idle_timeouts") == Some(1) && snap.counter("conns_closed") == Some(1) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "{backend:?}: idle timeout never counted: {:?}",
                snap.counters
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        std::thread::sleep(Duration::from_millis(120));
        let snap = service.snapshot();
        assert_eq!(
            snap.counter("idle_timeouts"),
            Some(1),
            "{backend:?}: idle timeout double-counted"
        );
        assert_eq!(
            snap.counter("conns_closed"),
            Some(1),
            "{backend:?}: close double-counted"
        );
        shutdown_and_check_gauge(server, "idle timeout");
    }
}

/// A pipelined window over a live server: W tagged requests issued
/// before any response is reaped, every response matched to its tag
/// exactly once, GET payloads byte-for-byte — on every backend.
#[test]
fn pipelined_window_roundtrips_tagged_responses() {
    const WINDOW: usize = 32;
    for backend in ALL_BACKENDS {
        let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(16 << 20)));
        let server = Server::spawn(
            store,
            "127.0.0.1:0",
            ServerConfig::default().with_backend(backend),
        )
        .expect("spawn server");
        let addr = server.local_addr();

        let mut client = Client::connect(addr).expect("connect");
        client
            .set_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        let mut pipe = Pipeline::new();
        let mut page = vec![0u8; PAGE];

        // Window of PUTs, all in flight before the first reap.
        let mut tags: HashMap<u32, u64> = HashMap::new();
        for key in 0..WINDOW as u64 {
            fill_page(key, key + 1, &mut page);
            let seq = pipe
                .send(&mut client, &Request::Put { key, page: &page })
                .expect("pipeline PUT");
            tags.insert(seq, key);
        }
        assert_eq!(pipe.in_flight(), WINDOW);
        let mut out = Vec::new();
        for _ in 0..WINDOW {
            let (seq, status) = pipe.recv(&mut client, &mut out).expect("reap PUT");
            assert_eq!(status, Status::Ok, "{backend:?}: PUT tag {seq} failed");
            assert!(
                tags.contains_key(&seq),
                "{backend:?}: unknown PUT tag {seq}"
            );
        }
        assert_eq!(pipe.in_flight(), 0);

        // Window of GETs; every payload must match its tag's key.
        let mut expect = vec![0u8; PAGE];
        tags.clear();
        for key in 0..WINDOW as u64 {
            let seq = pipe
                .send(&mut client, &Request::Get { key })
                .expect("pipeline GET");
            tags.insert(seq, key);
        }
        for _ in 0..WINDOW {
            let (seq, status) = pipe.recv(&mut client, &mut out).expect("reap GET");
            assert_eq!(status, Status::Ok, "{backend:?}: GET tag {seq} failed");
            let key = tags[&seq];
            fill_page(key, key + 1, &mut expect);
            assert_eq!(
                out, expect,
                "{backend:?}: GET({key}) corrupted under pipelining"
            );
        }

        // The connection is still a normal connection afterwards.
        client.ping().expect("ping after pipelined windows");
        drop(client);
        shutdown_and_check_gauge(server, "pipelined window");
    }
}

/// STATS over the wire is a parseable Prometheus payload carrying both
/// the store's and the server's metric families, schema-identical to
/// the in-process snapshot renderers.
#[test]
fn stats_is_scrapeable_prometheus() {
    let (server, store) = spill_server(64 << 10, ServerConfig::default().with_workers(2), "stats");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    let mut page = vec![0u8; PAGE];
    for key in 0..64 {
        fill_page(key, key + 1, &mut page);
        client.put(key, &page).expect("put");
    }
    // One word-patterned page routes through the BDI codec under the
    // default adaptive policy, so the per-codec counters are live.
    for (i, w) in page.chunks_exact_mut(8).enumerate() {
        w.copy_from_slice(&(0x4400_0000_0000u64 + (i as u64 * 3) % 90).to_le_bytes());
    }
    client.put(64, &page).expect("put bdi page");
    let mut out = Vec::new();
    client.get(3, &mut out).expect("get");
    client.get(64, &mut out).expect("get bdi page");
    assert_eq!(out, page, "bdi page corrupted over the wire");
    let text = client.stats().expect("stats");

    assert!(text.contains("cc_store_compressed_total"), "{text}");
    assert!(text.contains("cc_server_req_put_total 65"), "{text}");
    assert!(text.contains("cc_server_req_get_total 2"), "{text}");
    // Per-codec routing counters and latency histograms are part of the
    // STATS surface, and the sweep above exercised both codecs.
    assert!(text.contains("cc_store_puts_bdi_total 1"), "{text}");
    assert!(text.contains("cc_store_codec_fallbacks_total"), "{text}");
    assert!(
        text.contains("cc_store_compress_lzrw1_latency_ns"),
        "{text}"
    );
    assert!(text.contains("cc_store_compress_bdi_latency_ns"), "{text}");
    assert!(
        text.contains("cc_store_decompress_bdi_latency_ns"),
        "{text}"
    );
    let puts_lzrw1 = text
        .lines()
        .find_map(|l| l.strip_prefix("cc_store_puts_lzrw1_total "))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("cc_store_puts_lzrw1_total missing");
    assert!(puts_lzrw1 > 0, "no puts routed to lzrw1: {text}");
    // The recovery telemetry surface is part of the schema even on a
    // non-persistent store (all zero here, live after a warm restart).
    for series in [
        "cc_store_extents_recovered_total",
        "cc_store_journal_records_replayed_total",
        "cc_store_torn_tail_discarded_total",
        "cc_store_stale_generation_dropped_total",
        "cc_store_journal_records_written_total",
        "cc_store_clean_recoveries_total",
        "cc_store_recovery_duration_latency_ns",
    ] {
        assert!(
            text.contains(series),
            "missing recovery series {series}: {text}"
        );
    }
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let mut parts = line.split_whitespace();
        let (name, value, extra) = (parts.next(), parts.next(), parts.next());
        assert!(
            name.is_some() && value.is_some() && extra.is_none(),
            "unparseable line: {line:?}"
        );
        assert!(
            value.unwrap().parse::<f64>().is_ok(),
            "non-numeric value: {line:?}"
        );
    }
    // Same metric names, same order as the in-process renderers (the
    // schema the cc_telemetry::Exporter writes).
    let names = |t: &str| {
        t.lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .filter_map(|l| l.split_whitespace().next().map(str::to_owned))
            .collect::<Vec<_>>()
    };
    let mut local = store.telemetry_snapshot().to_prometheus("cc_store");
    local.push_str(&server.service().snapshot().to_prometheus("cc_server"));
    assert_eq!(names(&text), names(&local), "STATS schema drifted");
    drop(client);
    shutdown_and_check_gauge(server, "stats");
}

/// Warm restart over the wire: a persistent store is filled through
/// one server, sealed by an orderly shutdown, reopened with
/// [`CompressedStore::open_existing`], and a *fresh* server over the
/// recovered store answers GETs for every spilled key byte-for-byte —
/// zero PUTs issued to the second server, and the clean fast path
/// (no extent re-scan) taken on open. The recovery counters are live
/// in the warm server's STATS payload.
#[test]
fn warm_restarted_server_serves_gets_without_reput() {
    use cc_core::store::HitTier;
    const BUDGET: usize = 16 << 10; // tiny: most of the working set spills
    const KEYS: u64 = 96;
    let path = std::env::temp_dir().join(format!("cc-server-test-warm-{}.bin", std::process::id()));
    let map = path.with_extension("bin.map");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&map);

    // Cold run: fill through the wire, flush, snapshot the spill set.
    let store = Arc::new(CompressedStore::new(
        StoreConfig::with_spill(BUDGET, &path).with_persistent(true),
    ));
    let server = Server::spawn(
        Arc::clone(&store),
        "127.0.0.1:0",
        ServerConfig::default().with_workers(2),
    )
    .expect("spawn cold server");
    let mut client = Client::connect(server.local_addr()).expect("connect cold");
    let mut page = vec![0u8; PAGE];
    for key in 0..KEYS {
        fill_page(key, key + 7, &mut page);
        client.put(key, &page).expect("cold put");
    }
    client.flush().expect("cold flush");
    let durable: Vec<u64> = (0..KEYS)
        .filter(|&k| store.peek_tier(k) == Some(HitTier::Spill))
        .collect();
    assert!(
        durable.len() > KEYS as usize / 2,
        "budget too generous — only {} of {KEYS} keys spilled",
        durable.len()
    );
    drop(client);
    shutdown_and_check_gauge(server, "warm-restart cold phase");
    drop(store); // last reference: the spill writer drains and seals clean

    // Warm run: recover from the files alone and serve immediately.
    let reopened = Arc::new(
        CompressedStore::open_existing(StoreConfig::with_spill(BUDGET, &path)).expect("warm open"),
    );
    let stats = reopened.stats();
    assert_eq!(
        stats.clean_recoveries, 1,
        "orderly shutdown did not seal clean"
    );
    assert_eq!(
        stats.recovery_extents_verified, 0,
        "clean start took the slow extent scan"
    );
    assert!(
        stats.extents_recovered >= durable.len() as u64,
        "recovered {} extents, expected at least {}",
        stats.extents_recovered,
        durable.len()
    );
    let server = Server::spawn(
        Arc::clone(&reopened),
        "127.0.0.1:0",
        ServerConfig::default().with_workers(2),
    )
    .expect("spawn warm server");
    let mut client = Client::connect(server.local_addr()).expect("connect warm");
    let mut out = Vec::new();
    let mut expect = vec![0u8; PAGE];
    for &key in &durable {
        fill_page(key, key + 7, &mut expect);
        assert!(
            client.get(key, &mut out).expect("warm get"),
            "durable key {key} missing after warm restart"
        );
        assert_eq!(out, expect, "warm restart served wrong bytes for key {key}");
    }
    let text = client.stats().expect("warm stats");
    let recovered = text
        .lines()
        .find_map(|l| l.strip_prefix("cc_store_extents_recovered_total "))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("cc_store_extents_recovered_total missing");
    assert!(recovered >= durable.len() as u64, "{text}");
    assert!(text.contains("cc_store_clean_recoveries_total 1"), "{text}");
    let snap = server.service().snapshot();
    assert_eq!(snap.counter("req_put"), Some(0), "warm server saw a re-PUT");
    assert_eq!(
        snap.counter("req_get"),
        Some(durable.len() as u64),
        "GET count drifted"
    );
    drop(client);
    shutdown_and_check_gauge(server, "warm-restart warm phase");
    drop(reopened);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&map);
}

/// Graceful shutdown drains the spill writer on both engines: every
/// acknowledged PUT is readable from the store afterwards, and the
/// listener is gone.
#[test]
fn shutdown_flushes_store_and_stops_listening() {
    const BUDGET: usize = 32 << 10; // force most pages through the spill writer
    for backend in [ServerBackend::Threaded, ServerBackend::Evented] {
        let (server, store) = spill_server(
            BUDGET,
            ServerConfig::default()
                .with_backend(backend)
                .with_workers(2),
            &format!("shutdown-{}", backend.name()),
        );
        let addr = server.local_addr();
        let mut client = Client::connect(addr).expect("connect");
        let mut page = vec![0u8; PAGE];
        for key in 0..128 {
            fill_page(key, key + 7, &mut page);
            client.put(key, &page).expect("put");
        }
        drop(client);
        shutdown_and_check_gauge(server, "shutdown flush");

        // Acknowledged data survives: the writer was flushed on the way
        // out.
        let mut out = vec![0u8; PAGE];
        let mut expect = vec![0u8; PAGE];
        for key in 0..128 {
            assert!(
                store.get(key, &mut out).expect("get after shutdown"),
                "{backend:?}: key {key} lost by shutdown"
            );
            fill_page(key, key + 7, &mut expect);
            assert_eq!(
                out, expect,
                "{backend:?}: key {key} corrupted across shutdown"
            );
        }
        // The listener is gone: connects are refused (or at best reset
        // without service).
        match Client::connect(addr) {
            Err(_) => {}
            Ok(mut c) => assert!(
                c.ping().is_err(),
                "{backend:?}: server still serving after shutdown"
            ),
        }
    }
}

/// Satellite: connection churn over every close path — clean closes,
/// mid-frame aborts, malformed frames — leaves the `open_connections`
/// gauge at zero while the server is still running, on every backend.
#[test]
fn gauge_survives_connection_churn() {
    for backend in ALL_BACKENDS {
        let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(4 << 20)));
        let server = Server::spawn(
            store,
            "127.0.0.1:0",
            ServerConfig::default()
                .with_backend(backend)
                .with_workers(2)
                .with_idle_timeout(Duration::from_secs(30)),
        )
        .expect("spawn server");
        let addr = server.local_addr();
        let service = Arc::clone(server.service());

        for round in 0..10 {
            match round % 3 {
                // Clean: one request, orderly close.
                0 => {
                    let mut c = Client::connect(addr).expect("connect");
                    c.ping().expect("ping");
                }
                // Abort mid-frame: half a header, then drop.
                1 => {
                    use std::io::Write as _;
                    let mut s = TcpStream::connect(addr).expect("connect");
                    s.write_all(&[9, 0, 0]).expect("partial header");
                    // Dropped here: FIN mid-frame on the server side.
                }
                // Malformed: well-framed junk body.
                _ => {
                    use std::io::Write as _;
                    let mut s = TcpStream::connect(addr).expect("connect");
                    let mut wire = Vec::new();
                    frame::write_frame(&mut wire, 5, &[77]).expect("frame");
                    s.write_all(&wire).expect("write");
                    let _ = read_response(&mut s);
                }
            }
        }

        // All churned connections settle closed while the server runs.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if service.open_connections() == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "{backend:?}: gauge stuck at {} after churn",
                service.open_connections()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let snap = service.snapshot();
        assert_eq!(snap.counter("conns_opened"), snap.counter("conns_closed"));
        shutdown_and_check_gauge(server, "gauge churn");
    }
}
