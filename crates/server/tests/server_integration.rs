//! End-to-end tests against a live `cc-server` on loopback.
//!
//! Covers the service-layer contract the unit tests cannot: concurrent
//! integrity under a mixed workload (every GET verified against a
//! shadow model, the store budget watched throughout), saturation
//! answering `BUSY` with the rejection visible in the wire counters,
//! each malformed-input class closing the connection with `ERR` without
//! panicking a worker, idle-timeout reaping, STATS being a parseable
//! Prometheus payload, and graceful shutdown leaving the store flushed
//! and readable.

use cc_core::store::{CompressedStore, StoreConfig};
use cc_server::frame::{self, FrameError};
use cc_server::{Client, ClientError, Response, Server, ServerConfig, Status};
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const PAGE: usize = 1024;

/// Deterministic page content for `(key, version)`; half the versions
/// compress well, the rest are noise.
fn fill_page(key: u64, version: u64, buf: &mut [u8]) {
    let salt =
        key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ version.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    if version.is_multiple_of(2) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = ((salt as usize + i / 7) % 61) as u8 + b' ';
        }
    } else {
        let mut x = salt | 1;
        for b in buf.iter_mut() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (x >> 33) as u8;
        }
    }
}

fn spill_server(budget: usize, cfg: ServerConfig, tag: &str) -> (Server, Arc<CompressedStore>) {
    let path =
        std::env::temp_dir().join(format!("cc-server-test-{tag}-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let store = Arc::new(CompressedStore::new(StoreConfig::with_spill(budget, &path)));
    let server = Server::spawn(Arc::clone(&store), "127.0.0.1:0", cfg).expect("spawn server");
    (server, store)
}

/// Satellite: 4 client threads × 10k mixed ops, every GET checked
/// byte-for-byte against a per-thread shadow map, zero mismatches, and
/// the store's resident bytes never exceed the budget.
#[test]
fn concurrent_integrity_under_mixed_load() {
    const THREADS: usize = 4;
    const OPS: u64 = 10_000;
    const KEYS_PER_THREAD: u64 = 256;
    const BUDGET: usize = 256 << 10; // well under the working set: spill exercised

    let (server, store) = spill_server(
        BUDGET,
        ServerConfig::default().with_workers(THREADS),
        "integrity",
    );
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let watcher = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut max_seen = 0u64;
            while !stop.load(Ordering::Relaxed) {
                max_seen = max_seen.max(store.stats().resident_bytes);
            }
            max_seen
        })
    };

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client
                    .set_timeout(Some(Duration::from_secs(30)))
                    .expect("timeout");
                let base = t as u64 * KEYS_PER_THREAD;
                let mut shadow: HashMap<u64, u64> = HashMap::new();
                let mut version = 0u64;
                let mut rng = t as u64 + 1;
                let mut page = vec![0u8; PAGE];
                let mut expect = vec![0u8; PAGE];
                let mut out = Vec::with_capacity(PAGE);
                let mut next = || {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    rng >> 33
                };
                for op in 0..OPS {
                    let key = base + next() % KEYS_PER_THREAD;
                    match next() % 10 {
                        0..=4 => {
                            version += 1;
                            fill_page(key, version, &mut page);
                            client.put(key, &page).expect("put");
                            shadow.insert(key, version);
                        }
                        5..=8 => {
                            let hit = client.get(key, &mut out).expect("get");
                            match (hit, shadow.get(&key).copied()) {
                                (true, Some(v)) => {
                                    fill_page(key, v, &mut expect);
                                    assert_eq!(
                                        out, expect,
                                        "thread {t} op {op}: GET({key}) returned wrong bytes"
                                    );
                                }
                                (false, None) => {}
                                (hit, expected) => panic!(
                                    "thread {t} op {op}: GET({key}) hit={hit} but shadow={expected:?}"
                                ),
                            }
                        }
                        _ => {
                            let existed = client.del(key).expect("del");
                            assert_eq!(
                                existed,
                                shadow.remove(&key).is_some(),
                                "thread {t} op {op}: DEL({key}) existed-bit disagrees with shadow"
                            );
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread panicked");
    }
    stop.store(true, Ordering::Relaxed);
    let max_resident = watcher.join().expect("watcher panicked");
    assert!(
        max_resident <= BUDGET as u64,
        "store budget exceeded under load: saw {max_resident} resident bytes, budget {BUDGET}"
    );

    let snap = server.service().snapshot();
    let wire = |n: &str| snap.counter(n).unwrap_or(0);
    assert_eq!(wire("malformed_frames"), 0);
    assert_eq!(wire("busy_rejected"), 0);
    assert_eq!(wire("conns_opened"), THREADS as u64);
    assert_eq!(
        wire("req_put") + wire("req_get") + wire("req_del"),
        THREADS as u64 * OPS
    );
    assert_eq!(snap.event_count("conn_open"), Some(THREADS as u64));
    server.shutdown();
}

/// Reads the one unsolicited response frame off a raw connection.
fn read_response(stream: &mut TcpStream) -> Result<(Status, Vec<u8>), FrameError> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut body = Vec::new();
    frame::read_frame(stream, &mut body, frame::DEFAULT_MAX_FRAME)?;
    let resp = Response::decode(&body).expect("response decodes");
    Ok((resp.status, resp.payload.to_vec()))
}

/// Saturation is bounded and observable: with one worker occupied and a
/// zero backlog, the next connection is answered `BUSY` and the
/// rejection shows up in both the counter and the event ring.
#[test]
fn saturated_pool_answers_busy() {
    let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(4 << 20)));
    let server = Server::spawn(
        store,
        "127.0.0.1:0",
        ServerConfig::default().with_workers(1).with_backlog(0),
    )
    .expect("spawn server");
    let addr = server.local_addr();

    // Occupy the only worker; the completed PING proves the connection
    // was admitted and is being served.
    let mut holder = Client::connect(addr).expect("connect holder");
    holder.ping().expect("ping");

    // The pool is now full: the next connection must be told BUSY. The
    // server writes the frame unsolicited and closes, so read directly.
    let mut extra = TcpStream::connect(addr).expect("connect extra");
    let (status, payload) = read_response(&mut extra).expect("read BUSY frame");
    assert_eq!(status, Status::Busy);
    assert!(payload.is_empty());
    let mut rest = Vec::new();
    assert!(
        matches!(
            frame::read_frame(&mut extra, &mut rest, frame::DEFAULT_MAX_FRAME),
            Err(FrameError::Closed)
        ),
        "rejected connection should be closed after BUSY"
    );

    // A Client sees the same thing as ClientError::Busy.
    match Client::connect(addr).expect("connect second extra").ping() {
        Err(ClientError::Busy) => {}
        // The unsolicited BUSY + close can race the client's write into
        // an I/O error on some kernels; the counters below still pin
        // that both rejections happened server-side.
        Err(ClientError::Io(_)) => {}
        other => panic!("expected BUSY, got {other:?}"),
    }

    let snap = server.service().snapshot();
    assert_eq!(snap.counter("busy_rejected"), Some(2));
    assert_eq!(snap.event_count("busy"), Some(2));
    assert_eq!(snap.counter("malformed_frames"), Some(0));

    // The held connection still works: rejection never hurts admitted
    // traffic.
    holder.ping().expect("holder still served");
    drop(holder);
    server.shutdown();
}

/// Satellite: the client's bounded retry-with-backoff rides out a
/// saturation window. With one worker held busy, a no-retry client gets
/// `BUSY` immediately; a retrying client keeps reconnecting with
/// backoff and succeeds once the holder releases the worker — within
/// the policy's `max_backoff_total` bound (plus I/O slack). A retrying
/// client against a *permanently* saturated pool still fails, in
/// bounded time.
#[test]
fn client_retry_rides_out_saturation() {
    let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(4 << 20)));
    let server = Server::spawn(
        store,
        "127.0.0.1:0",
        ServerConfig::default().with_workers(1).with_backlog(0),
    )
    .expect("spawn server");
    let addr = server.local_addr();

    // Occupy the only worker (the completed PING proves admission).
    let holder = {
        let mut c = Client::connect(addr).expect("connect holder");
        c.ping().expect("ping");
        c
    };

    // Default policy (one attempt): BUSY surfaces immediately.
    match Client::connect(addr).expect("connect no-retry").ping() {
        Err(ClientError::Busy) | Err(ClientError::Io(_)) => {}
        other => panic!("expected immediate BUSY without retry, got {other:?}"),
    }

    // Exhausted retries against a pool that never frees up: the failure
    // is still BUSY and the total wait respects the backoff bound.
    let mut capped = Client::connect(addr)
        .expect("connect capped")
        .with_retry(4, Duration::from_millis(2));
    let bound = capped.retry_policy().max_backoff_total();
    assert_eq!(bound, Duration::from_millis(2 + 4 + 8));
    let start = std::time::Instant::now();
    match capped.ping() {
        Err(ClientError::Busy) | Err(ClientError::Io(_)) => {}
        other => panic!("expected BUSY after exhausting retries, got {other:?}"),
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < bound + Duration::from_secs(5),
        "retry loop unbounded: {elapsed:?} for bound {bound:?}"
    );

    // Release the worker mid-retry: the retrying client must succeed.
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(40));
        drop(holder);
    });
    let mut retrier = Client::connect(addr)
        .expect("connect retrier")
        .with_retry(10, Duration::from_millis(10));
    let start = std::time::Instant::now();
    retrier
        .ping()
        .expect("retrying client should succeed once the pool frees up");
    let elapsed = start.elapsed();
    let bound = retrier.retry_policy().max_backoff_total() + Duration::from_secs(10);
    assert!(elapsed < bound, "retry took {elapsed:?}, bound {bound:?}");
    release.join().expect("release thread");

    // The retried connection is a normal, reusable connection.
    retrier.put(9, &vec![0x5A; PAGE]).expect("put after retry");
    let mut out = Vec::new();
    assert!(retrier.get(9, &mut out).expect("get after retry"));
    assert_eq!(out, vec![0x5A; PAGE]);
    drop(retrier);
    server.shutdown();
}

/// Every malformed-input class: the server answers `ERR`, closes the
/// connection, bumps `malformed_frames`, and keeps serving new
/// connections (no worker panics).
#[test]
fn malformed_frames_close_with_err_and_count() {
    let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(4 << 20)));
    let server = Server::spawn(
        store,
        "127.0.0.1:0",
        ServerConfig::default().with_workers(2),
    )
    .expect("spawn server");
    let addr = server.local_addr();
    let service = Arc::clone(server.service());
    let malformed = || service.snapshot().counter("malformed_frames").unwrap_or(0);

    let expect_err_then_close = |stream: &mut TcpStream, what: &str| {
        let (status, payload) =
            read_response(stream).unwrap_or_else(|e| panic!("{what}: expected ERR frame, got {e}"));
        assert_eq!(status, Status::Err, "{what}: wrong status");
        assert!(!payload.is_empty(), "{what}: ERR should carry a message");
        let mut rest = Vec::new();
        assert!(
            matches!(
                frame::read_frame(stream, &mut rest, frame::DEFAULT_MAX_FRAME),
                Err(FrameError::Closed)
            ),
            "{what}: connection should be closed after ERR"
        );
    };

    // 1. Truncated header: half a length prefix, then EOF.
    {
        use std::io::Write as _;
        let before = malformed();
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(&[7, 0]).expect("write partial prefix");
        s.shutdown(std::net::Shutdown::Write).expect("half-close");
        expect_err_then_close(&mut s, "truncated header");
        assert_eq!(malformed(), before + 1, "truncated header not counted");
    }

    // 2. Oversized length prefix: rejected before any body allocation.
    {
        use std::io::Write as _;
        let before = malformed();
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(&u32::MAX.to_le_bytes()).expect("write prefix");
        expect_err_then_close(&mut s, "oversized prefix");
        assert_eq!(malformed(), before + 1, "oversized prefix not counted");
    }

    // 3. Unknown opcode: a whole, well-framed body that fails decoding.
    {
        use std::io::Write as _;
        let before = malformed();
        let mut s = TcpStream::connect(addr).expect("connect");
        let mut wire = Vec::new();
        frame::write_frame(&mut wire, &[42]).expect("encode frame");
        s.write_all(&wire).expect("write frame");
        expect_err_then_close(&mut s, "unknown opcode");
        assert_eq!(malformed(), before + 1, "unknown opcode not counted");
    }

    // 4. Truncated body: prefix promises more bytes than ever arrive.
    {
        use std::io::Write as _;
        let before = malformed();
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(&16u32.to_le_bytes()).expect("write prefix");
        s.write_all(&[1, 2, 3]).expect("write partial body");
        s.shutdown(std::net::Shutdown::Write).expect("half-close");
        expect_err_then_close(&mut s, "truncated body");
        assert_eq!(malformed(), before + 1, "truncated body not counted");
    }

    // The events agree with the counter, and the server still serves.
    let snap = service.snapshot();
    assert_eq!(
        snap.event_count("malformed"),
        snap.counter("malformed_frames")
    );
    let mut client = Client::connect(addr).expect("connect after abuse");
    client.ping().expect("server survived malformed input");
    client.put(1, &vec![3u8; PAGE]).expect("put works");
    let mut out = Vec::new();
    assert!(client.get(1, &mut out).expect("get works"));
    assert_eq!(out, vec![3u8; PAGE]);
    drop(client);
    server.shutdown();
}

/// Idle connections are reaped after the configured timeout and counted.
#[test]
fn idle_connections_time_out() {
    let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(4 << 20)));
    let server = Server::spawn(
        store,
        "127.0.0.1:0",
        ServerConfig::default()
            .with_workers(1)
            .with_idle_timeout(Duration::from_millis(150)),
    )
    .expect("spawn server");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");
    // Go quiet past the idle deadline; the server closes from its side.
    std::thread::sleep(Duration::from_millis(600));
    assert!(
        client.ping().is_err(),
        "connection should be closed after idling"
    );
    // Allow the close-side accounting to land.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let snap = server.service().snapshot();
        if snap.counter("idle_timeouts") == Some(1) && snap.counter("conns_closed") == Some(1) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "idle timeout never counted: {:?}",
            snap.counters
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

/// STATS over the wire is a parseable Prometheus payload carrying both
/// the store's and the server's metric families, schema-identical to
/// the in-process snapshot renderers.
#[test]
fn stats_is_scrapeable_prometheus() {
    let (server, store) = spill_server(64 << 10, ServerConfig::default().with_workers(2), "stats");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    let mut page = vec![0u8; PAGE];
    for key in 0..64 {
        fill_page(key, key + 1, &mut page);
        client.put(key, &page).expect("put");
    }
    let mut out = Vec::new();
    client.get(3, &mut out).expect("get");
    let text = client.stats().expect("stats");

    assert!(text.contains("cc_store_compressed_total"), "{text}");
    assert!(text.contains("cc_server_req_put_total 64"), "{text}");
    assert!(text.contains("cc_server_req_get_total 1"), "{text}");
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let mut parts = line.split_whitespace();
        let (name, value, extra) = (parts.next(), parts.next(), parts.next());
        assert!(
            name.is_some() && value.is_some() && extra.is_none(),
            "unparseable line: {line:?}"
        );
        assert!(
            value.unwrap().parse::<f64>().is_ok(),
            "non-numeric value: {line:?}"
        );
    }
    // Same metric names, same order as the in-process renderers (the
    // schema the cc_telemetry::Exporter writes).
    let names = |t: &str| {
        t.lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .filter_map(|l| l.split_whitespace().next().map(str::to_owned))
            .collect::<Vec<_>>()
    };
    let mut local = store.telemetry_snapshot().to_prometheus("cc_store");
    local.push_str(&server.service().snapshot().to_prometheus("cc_server"));
    assert_eq!(names(&text), names(&local), "STATS schema drifted");
    drop(client);
    server.shutdown();
}

/// Graceful shutdown drains the spill writer: every acknowledged PUT is
/// readable from the store afterwards, and the listener is gone.
#[test]
fn shutdown_flushes_store_and_stops_listening() {
    const BUDGET: usize = 32 << 10; // force most pages through the spill writer
    let (server, store) = spill_server(BUDGET, ServerConfig::default().with_workers(2), "shutdown");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    let mut page = vec![0u8; PAGE];
    for key in 0..128 {
        fill_page(key, key + 7, &mut page);
        client.put(key, &page).expect("put");
    }
    drop(client);
    server.shutdown();

    // Acknowledged data survives: the writer was flushed on the way out.
    let mut out = vec![0u8; PAGE];
    let mut expect = vec![0u8; PAGE];
    for key in 0..128 {
        assert!(
            store.get(key, &mut out).expect("get after shutdown"),
            "key {key} lost by shutdown"
        );
        fill_page(key, key + 7, &mut expect);
        assert_eq!(out, expect, "key {key} corrupted across shutdown");
    }
    // The listener is gone: connects are refused (or at best reset
    // without service).
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => assert!(c.ping().is_err(), "server still serving after shutdown"),
    }
}
