//! Protocol hardening: property tests over the wire encoding.
//!
//! Two invariants carry the server's safety story:
//!
//! 1. **Round-trip** — every request and response that can be encoded
//!    decodes back to exactly itself, including through the framing
//!    layer (length prefix + body over a byte stream).
//! 2. **Totality** — `decode` over *arbitrary* bytes returns an error
//!    for malformed input and never panics; a hostile peer can close
//!    its own connection, nothing more.

use cc_server::frame;
use cc_server::proto::{ProtoError, Request, Response, Status};
use proptest::prelude::*;

/// Owned mirror of [`Request`] so strategies can hold the page bytes.
#[derive(Debug, Clone)]
enum OwnedReq {
    Put(u64, Vec<u8>),
    Get(u64),
    Del(u64),
    Flush,
    Stats,
    Ping,
}

impl OwnedReq {
    fn as_request(&self) -> Request<'_> {
        match self {
            OwnedReq::Put(key, page) => Request::Put { key: *key, page },
            OwnedReq::Get(key) => Request::Get { key: *key },
            OwnedReq::Del(key) => Request::Del { key: *key },
            OwnedReq::Flush => Request::Flush,
            OwnedReq::Stats => Request::Stats,
            OwnedReq::Ping => Request::Ping,
        }
    }
}

fn req_strategy() -> impl Strategy<Value = OwnedReq> {
    prop_oneof![
        (
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..4096)
        )
            .prop_map(|(k, p)| OwnedReq::Put(k, p)),
        any::<u64>().prop_map(OwnedReq::Get),
        any::<u64>().prop_map(OwnedReq::Del),
        Just(OwnedReq::Flush),
        Just(OwnedReq::Stats),
        Just(OwnedReq::Ping),
    ]
}

fn status_strategy() -> impl Strategy<Value = Status> {
    prop_oneof![
        Just(Status::Ok),
        Just(Status::NotFound),
        Just(Status::Busy),
        Just(Status::Err),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every request round-trips body-level and through framing, with
    /// its sequence tag intact.
    #[test]
    fn request_roundtrip(owned in req_strategy(), seq in any::<u32>()) {
        let req = owned.as_request();
        let mut body = Vec::new();
        req.encode(&mut body);
        prop_assert_eq!(Request::decode(&body).unwrap(), req);

        // Through the framing layer over a byte stream.
        let mut wire = Vec::new();
        frame::write_frame(&mut wire, seq, &body).unwrap();
        let mut cursor = &wire[..];
        let mut read = Vec::new();
        let got = frame::read_frame(&mut cursor, &mut read, frame::DEFAULT_MAX_FRAME).unwrap();
        prop_assert_eq!(got, seq);
        prop_assert_eq!(Request::decode(&read).unwrap(), req);
    }

    /// Every response round-trips body-level and through framing, with
    /// its sequence tag intact.
    #[test]
    fn response_roundtrip(
        status in status_strategy(),
        payload in proptest::collection::vec(any::<u8>(), 0..4096),
        seq in any::<u32>(),
    ) {
        let resp = Response { status, payload: &payload };
        let mut body = Vec::new();
        resp.encode(&mut body);
        prop_assert_eq!(Response::decode(&body).unwrap(), resp);

        let mut wire = Vec::new();
        frame::write_frame(&mut wire, seq, &body).unwrap();
        let mut cursor = &wire[..];
        let mut read = Vec::new();
        let got = frame::read_frame(&mut cursor, &mut read, frame::DEFAULT_MAX_FRAME).unwrap();
        prop_assert_eq!(got, seq);
        prop_assert_eq!(Response::decode(&read).unwrap(), resp);
    }

    /// Arbitrary bytes never panic the decoders — they either decode or
    /// return a [`ProtoError`]. Run both decoders over the same junk.
    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Truncating a valid request body anywhere yields an error (or, for
    /// PUT, possibly a *different* valid PUT is impossible: the declared
    /// page length no longer matches), never a panic and never the
    /// original request.
    #[test]
    fn truncation_never_confuses(owned in req_strategy(), cut in 0usize..64) {
        let req = owned.as_request();
        let mut body = Vec::new();
        req.encode(&mut body);
        if body.len() <= 1 {
            return Ok(());
        }
        let cut = 1 + cut % (body.len() - 1); // keep at least the opcode, drop >= 1 byte
        let truncated = &body[..body.len() - cut];
        if let Ok(decoded) = Request::decode(truncated) {
            prop_assert_ne!(decoded, req);
        }
    }

    /// A frame whose length prefix exceeds the ceiling is rejected
    /// before any allocation, whatever the declared length.
    #[test]
    fn oversized_prefix_always_rejected(len in (1u64 << 20)..(u32::MAX as u64)) {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(len as u32).to_le_bytes());
        wire.extend_from_slice(&1u32.to_le_bytes()); // seq
        let mut cursor = &wire[..];
        let mut buf = Vec::new();
        let max = 1 << 20;
        match frame::read_frame(&mut cursor, &mut buf, max) {
            Err(frame::FrameError::Oversized { len: got, max: m }) => {
                prop_assert_eq!(got, len as usize);
                prop_assert_eq!(m, max);
                prop_assert_eq!(buf.capacity(), 0);
            }
            other => prop_assert!(false, "expected Oversized, got {:?}", other.map(|_| ())),
        }
    }
}

/// Deterministic spot checks for each malformation class, pinning the
/// exact error variants the server's telemetry classes key off.
#[test]
fn malformed_classes_pinned() {
    assert_eq!(Request::decode(&[]), Err(ProtoError::Empty));
    assert_eq!(Request::decode(&[0]), Err(ProtoError::UnknownOpcode(0)));
    assert_eq!(Request::decode(&[255]), Err(ProtoError::UnknownOpcode(255)));
    // GET key cut short.
    assert!(matches!(
        Request::decode(&[2, 1, 2, 3, 4]),
        Err(ProtoError::Truncated { op: "get", .. })
    ));
    // PUT header cut short.
    assert!(matches!(
        Request::decode(&[1, 9, 9, 9]),
        Err(ProtoError::Truncated { op: "put", .. })
    ));
    // PUT length-vs-body disagreement in both directions.
    let mut body = Vec::new();
    Request::Put {
        key: 5,
        page: &[1, 2, 3, 4],
    }
    .encode(&mut body);
    let short = &body[..body.len() - 1];
    assert!(matches!(
        Request::decode(short),
        Err(ProtoError::BadPayloadLen {
            declared: 4,
            got: 3
        })
    ));
    let mut long = body.clone();
    long.push(0);
    assert!(matches!(
        Request::decode(&long),
        Err(ProtoError::BadPayloadLen {
            declared: 4,
            got: 5
        })
    ));
    // Payload-less opcodes with trailing junk.
    for op in [4u8, 5, 6] {
        assert!(matches!(
            Request::decode(&[op, 1]),
            Err(ProtoError::TrailingBytes { .. })
        ));
    }
}
