//! Temporary repro: pipelined window large enough to trip write
//! backpressure on the evented backend.

use cc_core::store::{CompressedStore, StoreConfig};
use cc_server::{Client, Pipeline, Request, Server, ServerBackend, ServerConfig, Status};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn big_pipelined_window_survives_backpressure() {
    const PAGE: usize = 4096;
    const WINDOW: usize = 400; // ~1.6 MiB of responses > 1 MiB cap
    let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(64 << 20)));
    let server = Server::spawn(
        store,
        "127.0.0.1:0",
        ServerConfig::default().with_backend(ServerBackend::Evented),
    )
    .expect("spawn server");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let page = vec![0xA5u8; PAGE];
    for key in 0..WINDOW as u64 {
        client.put(key, &page).expect("put");
    }

    let mut pipe = Pipeline::new();
    for key in 0..WINDOW as u64 {
        pipe.send(&mut client, &Request::Get { key }).expect("send");
    }
    let mut out = Vec::new();
    for i in 0..WINDOW {
        let (seq, status) = pipe
            .recv(&mut client, &mut out)
            .unwrap_or_else(|e| panic!("reap {i} failed: {e:?}"));
        assert_eq!(status, Status::Ok, "tag {seq}");
        assert_eq!(out.len(), PAGE, "tag {seq}");
    }
}
