//! Aggregated measurements and the end-of-run report.

use cc_core::CoreStats;
use cc_disk::DiskStats;
use cc_telemetry::HistSummary;
use cc_util::{fmt, Ns};
use cc_vm::VmStats;

/// Counters owned by the `System` itself (the substrates keep their own).
#[derive(Debug, Clone, Default)]
pub struct SystemStats {
    /// Virtual time spent in workload `compute` calls.
    pub compute_time: Ns,
    /// Virtual time charged for word/slice memory references.
    pub mem_ref_time: Ns,
    /// Virtual time charged as per-fault kernel overhead.
    pub fault_overhead_time: Ns,
    /// Evictions of dirty pages written straight to a std swap file.
    pub std_swapouts: u64,
    /// Pages faulted in from a std swap file.
    pub std_swapins: u64,
    /// Evictions resolved by the compression cache (all outcomes).
    pub cc_evictions: u64,
    /// Samples of cache size (frames), taken at every fault.
    pub cc_size_samples: u64,
    /// Sum of sampled cache sizes (frames), for the mean.
    pub cc_size_sum: u64,
    /// Peak frames mapped by the cache.
    pub cc_size_peak: usize,
    /// File-cache read hits (through the System file API).
    pub file_hits: u64,
    /// File-cache read misses.
    pub file_misses: u64,
    /// File-cache misses served by the compressed file cache (§6
    /// extension) instead of the disk.
    pub file_cc_hits: u64,
}

impl SystemStats {
    /// Mean compression-cache size in frames over the run.
    pub fn cc_mean_frames(&self) -> f64 {
        if self.cc_size_samples == 0 {
            0.0
        } else {
            self.cc_size_sum as f64 / self.cc_size_samples as f64
        }
    }
}

/// A flattened, serializable summary of a finished run, consumed by the
/// bench harnesses and EXPERIMENTS.md generation.
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Mode label ("std" or "cc").
    pub mode: String,
    /// Total virtual time, seconds.
    pub elapsed_secs: f64,
    /// Workload accesses.
    pub accesses: u64,
    /// Total faults.
    pub faults: u64,
    /// Faults served by decompression from memory.
    pub faults_from_cache: u64,
    /// Faults served from backing store.
    pub faults_from_disk: u64,
    /// Zero-fill faults.
    pub faults_zero_fill: u64,
    /// Mean page-access time over all accesses, milliseconds.
    pub mean_access_ms: f64,
    /// Disk reads issued.
    pub disk_reads: u64,
    /// Disk writes issued.
    pub disk_writes: u64,
    /// Bytes moved to/from disk.
    pub disk_bytes: u64,
    /// Disk seeks.
    pub disk_seeks: u64,
    /// Compression attempts.
    pub compress_attempts: u64,
    /// Fraction of attempts rejected by the threshold.
    pub rejected_fraction: f64,
    /// Mean kept compressed fraction (compressed/original).
    pub mean_kept_fraction: f64,
    /// Mean compression-cache size, MB.
    pub cc_mean_mb: f64,
    /// Peak compression-cache size, MB.
    pub cc_peak_mb: f64,
    /// Time stalled on in-flight cleaner writes, seconds.
    pub write_stall_secs: f64,
    /// Per-fault-class virtual-time latency summaries (`fault_zero_fill`,
    /// `fault_cc`, `fault_std`), populated by `System::report` from its
    /// telemetry histograms; empty when a run had no faults of any class.
    pub fault_latency: Vec<(String, HistSummary)>,
}

impl SystemReport {
    /// Assemble from the pieces.
    pub fn assemble(
        mode: &str,
        clock: Ns,
        page_bytes: usize,
        sys: &SystemStats,
        vm: &VmStats,
        disk: &DiskStats,
        core: Option<&CoreStats>,
    ) -> Self {
        let faults = vm.faults();
        let zero = CoreStats::default();
        let core = core.unwrap_or(&zero);
        SystemReport {
            mode: mode.to_string(),
            elapsed_secs: clock.as_secs_f64(),
            accesses: vm.accesses,
            faults,
            faults_from_cache: core.faults_from_cache,
            faults_from_disk: core.faults_from_swap + core.faults_from_swap_raw + sys.std_swapins,
            faults_zero_fill: vm.zero_fill_faults,
            mean_access_ms: if vm.accesses == 0 {
                0.0
            } else {
                clock.as_ms_f64() / vm.accesses as f64
            },
            disk_reads: disk.reads,
            disk_writes: disk.writes,
            disk_bytes: disk.bytes(),
            disk_seeks: disk.seeks,
            compress_attempts: core.compress_attempts,
            rejected_fraction: core.rejected_fraction(),
            mean_kept_fraction: core.mean_kept_fraction(),
            cc_mean_mb: sys.cc_mean_frames() * page_bytes as f64 / (1024.0 * 1024.0),
            cc_peak_mb: sys.cc_size_peak as f64 * page_bytes as f64 / (1024.0 * 1024.0),
            write_stall_secs: core.write_stall.as_secs_f64(),
            fault_latency: Vec::new(),
        }
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "[{}] elapsed {} ({} accesses, {} faults)\n",
            self.mode,
            fmt::min_sec(self.elapsed_secs),
            self.accesses,
            self.faults
        ));
        out.push_str(&format!(
            "  faults: {} from cache, {} from disk, {} zero-fill; mean access {:.3}ms\n",
            self.faults_from_cache,
            self.faults_from_disk,
            self.faults_zero_fill,
            self.mean_access_ms
        ));
        out.push_str(&format!(
            "  disk: {} reads, {} writes, {} moved, {} seeks\n",
            self.disk_reads,
            self.disk_writes,
            fmt::bytes(self.disk_bytes),
            self.disk_seeks
        ));
        if self.compress_attempts > 0 {
            out.push_str(&format!(
                "  compression: {} attempts, {} uncompressible, kept ratio {}\n",
                self.compress_attempts,
                fmt::pct(self.rejected_fraction),
                fmt::pct(self.mean_kept_fraction)
            ));
            out.push_str(&format!(
                "  cache size: mean {:.1}MB, peak {:.1}MB; write stalls {:.2}s\n",
                self.cc_mean_mb, self.cc_peak_mb, self.write_stall_secs
            ));
        }
        for (name, s) in &self.fault_latency {
            out.push_str(&format!(
                "  {name}: {} faults, p50 {}, p90 {}, p99 {}, max {} (virtual)\n",
                s.count,
                fmt::ns(s.p50),
                fmt::ns(s.p90),
                fmt::ns(s.p99),
                fmt::ns(s.max)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_and_render() {
        let vm = VmStats {
            accesses: 1000,
            zero_fill_faults: 10,
            swap_faults: 5,
            ..VmStats::default()
        };
        let sys = SystemStats::default();
        let disk = DiskStats::default();
        let r = SystemReport::assemble("std", Ns::from_secs(2), 4096, &sys, &vm, &disk, None);
        assert_eq!(r.accesses, 1000);
        assert_eq!(r.faults, 15);
        assert!((r.mean_access_ms - 2.0).abs() < 1e-9);
        let text = r.render();
        assert!(text.contains("[std]"));
        assert!(!text.contains("compression:"), "no cc block for std runs");
    }

    #[test]
    fn cc_mean_frames() {
        let s = SystemStats {
            cc_size_samples: 4,
            cc_size_sum: 100,
            ..SystemStats::default()
        };
        assert_eq!(s.cc_mean_frames(), 25.0);
    }
}
