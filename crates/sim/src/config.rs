//! Simulator configuration: machine, mode, and policy knobs.

use cc_compress::ThresholdPolicy;
use cc_core::cache::CpuCosts;
use cc_disk::DiskParams;
use cc_util::Ns;

/// Which compressor the cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecKind {
    /// LZRW1 with a hash table of the given size in bytes (16 KB in the
    /// paper's kernel).
    Lzrw1 {
        /// Hash-table size in bytes.
        table_bytes: usize,
    },
    /// Slower, better-compressing LZSS (the off-line-algorithm stand-in).
    Lzss,
    /// Run-length only (fast, weak).
    Rle,
    /// Identity (for sanity experiments; everything fails the threshold).
    Null,
}

/// System mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Unmodified Sprite: no compression anywhere.
    Std,
    /// Compression cache enabled.
    Cc,
}

/// Compression-cache policy knobs (§4.2's biases and the cleaner).
#[derive(Debug, Clone)]
pub struct CcParams {
    /// Codec selection.
    pub codec: CodecKind,
    /// Keep-compressed threshold (the paper's 4:3).
    pub threshold: ThresholdPolicy,
    /// Added to an uncompressed VM page's age when arbitrating: a larger
    /// value evicts (compresses) uncompressed pages sooner, growing the
    /// cache. *"The more the system favors compressed pages, the larger
    /// the compression cache will tend to grow in periods of heavy
    /// paging."*
    pub vm_age_penalty: Ns,
    /// Multiplier applied to the compression cache's raw age in the
    /// arbitration. Values below 1 make the cache age more slowly than VM
    /// pages, so it holds on to memory under paging load; 1.0 treats it
    /// like any other consumer (near-buffer behavior); large values make
    /// it give memory back readily. This is the §4.2 bias knob the paper
    /// calls application-dependent; the ablation bench sweeps it.
    pub cc_age_scale: f64,
    /// Added to a file-cache block's age: files yield memory before
    /// anything else (Sprite's original bias, extended three ways).
    pub fs_age_penalty: Ns,
    /// The cleaner keeps at least this many frames clean-or-free ahead of
    /// demand by writing oldest dirty compressed pages in the background.
    pub cleaner_low_frames: usize,
    /// Fragment size on backing store (1 KB in the paper).
    pub fragment_bytes: usize,
    /// Write-batch / cluster size (32 KB in the paper).
    pub cluster_bytes: usize,
    /// May compressed pages span file-block boundaries (§4.3 parameter)?
    pub allow_span: bool,
    /// Install neighboring compressed pages found in block-rounded swap
    /// reads (costs no extra I/O).
    pub swap_readahead: bool,
    /// §6 extension: keep evicted file-cache blocks in the compression
    /// cache as discardable compressed copies, improving the effective
    /// file-cache hit rate ("one might consider ... keep part or all of
    /// the file buffer cache in compressed format").
    pub compress_file_cache: bool,
    /// Size of the compressed swap area on disk.
    pub swap_bytes: u64,
    /// Adaptive disable (§5.2 "It should be possible to disable
    /// compression completely when poor compression is obtained"): after
    /// this many consecutive threshold rejections the cache stops
    /// compressing and routes evictions straight to swap, re-probing one
    /// page in every `adaptive_reprobe`. 0 disables the feature.
    pub adaptive_disable_after: u32,
    /// See `adaptive_disable_after`.
    pub adaptive_reprobe: u32,
}

impl Default for CcParams {
    fn default() -> Self {
        CcParams {
            codec: CodecKind::Lzrw1 {
                table_bytes: 16 * 1024,
            },
            threshold: ThresholdPolicy::default(),
            vm_age_penalty: Ns::from_ms(20),
            cc_age_scale: 0.15,
            fs_age_penalty: Ns::from_ms(100),
            cleaner_low_frames: 8,
            fragment_bytes: 1024,
            cluster_bytes: 32 * 1024,
            allow_span: true,
            swap_readahead: true,
            compress_file_cache: false,
            swap_bytes: 256 * 1024 * 1024,
            adaptive_disable_after: 0,
            adaptive_reprobe: 64,
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Physical memory available to user processes (the paper configures
    /// ~6 MB for Figure 3 and ~14 MB for Table 1).
    pub user_memory_bytes: usize,
    /// Page size (4 KB on the DECstation 5000/200).
    pub page_bytes: usize,
    /// Cost of one word-granularity memory reference by the workload.
    pub mem_ref: Ns,
    /// Kernel overhead per page fault (trap, lookup, map).
    pub fault_overhead: Ns,
    /// CPU-side bandwidths (compression, memcpy).
    pub cpu: CpuCosts,
    /// Backing-store device.
    pub disk: DiskParams,
    /// Std or Cc.
    pub mode: Mode,
    /// Compression-cache parameters (used only in `Mode::Cc`).
    pub cc: CcParams,
    /// Deterministic seed available to workloads.
    pub seed: u64,
}

impl SimConfig {
    /// The paper's measurement machine: DECstation 5000/200 with an RZ57,
    /// configured with `user_memory_bytes` for user processes.
    pub fn decstation(user_memory_bytes: usize, mode: Mode) -> Self {
        SimConfig {
            user_memory_bytes,
            page_bytes: 4096,
            mem_ref: Ns(400),
            fault_overhead: Ns::from_us(250),
            cpu: CpuCosts::decstation_5000_200(),
            disk: DiskParams::rz57(),
            mode,
            cc: CcParams::default(),
            seed: 0x5EED,
        }
    }

    /// Number of user frames.
    pub fn frames(&self) -> usize {
        self.user_memory_bytes / self.page_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decstation_defaults() {
        let c = SimConfig::decstation(6 * 1024 * 1024, Mode::Cc);
        assert_eq!(c.frames(), 1536);
        assert_eq!(c.page_bytes, 4096);
        assert_eq!(c.disk.name, "RZ57");
    }
}
