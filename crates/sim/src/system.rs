//! The simulated machine: VM + file cache + compression cache + disk under
//! one virtual clock, with the §4.2 three-way memory arbiter.

use std::collections::HashMap;

use cc_blockfs::{read_block_through, BufferCache, CacheBlockKey, FileId, FileSystem};
use cc_compress::{Compressor, Lzrw1, Lzss, Null, Rle};
use cc_core::{
    BackingStore, CacheConfig, CleanEvictOutcome, CompressionCache, CoreStats, FaultOutcome,
    InsertOutcome, OverheadReport, PageKey,
};
use cc_disk::{Completion, Disk, DiskStats};
use cc_mem::{FrameId, FrameOwner, FramePool};
use cc_telemetry::{Telemetry, TelemetrySpec};
use cc_util::Ns;
use cc_vm::{AccessResult, FaultKind, SegId, Vm, VmStats};

use crate::config::{CodecKind, Mode, SimConfig};
use crate::stats::{SystemReport, SystemStats};

/// Timed-operation indices for the simulator's telemetry: fault service
/// latency per fault class, in **virtual** nanoseconds (clock deltas
/// across `service_fault`, so they are exactly the latencies a paper
/// Table 2/3-style breakdown wants, deterministic across runs).
mod top {
    pub const FAULT_ZERO_FILL: usize = 0;
    pub const FAULT_CC: usize = 1;
    pub const FAULT_STD: usize = 2;
    pub const NAMES: &[&str] = &["fault_zero_fill", "fault_cc", "fault_std"];
}

/// The simulator's telemetry layout: latency histograms only (the
/// simulator's counters live in [`SystemStats`] and the substrates).
const SIM_TELEMETRY: TelemetrySpec = TelemetrySpec {
    counters: &[],
    ops: top::NAMES,
    events: &[],
};

/// Page-key namespace for compressed file-cache blocks (§6 extension):
/// the high bit of the segment id distinguishes them from VM pages so the
/// two never collide and PTE bookkeeping skips them.
const FILE_KEY_BIT: u32 = 0x8000_0000;

fn file_block_key(file: FileId, block: u64) -> PageKey {
    PageKey {
        seg: FILE_KEY_BIT | file.0,
        page: block as u32,
    }
}

/// Backing-store adapter: the compression cache's flat byte space is one
/// big swap file on the shared file system.
struct FsBacking<'a> {
    fs: &'a mut FileSystem,
    file: FileId,
}

impl BackingStore for FsBacking<'_> {
    fn write(&mut self, now: Ns, offset: u64, data: &[u8]) -> Completion {
        self.fs.write_bytes(now, self.file, offset, data)
    }

    fn read(&mut self, now: Ns, offset: u64, out: &mut [u8]) -> Ns {
        self.fs.read_bytes(now, self.file, offset, out)
    }

    fn capacity(&self) -> u64 {
        self.fs.len_bytes(self.file)
    }
}

/// Which consumer the arbiter decided to take a frame from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VictimClass {
    Vm,
    FileCache,
    CompressionCache,
}

#[derive(Debug, Default)]
struct AdaptiveState {
    consecutive_rejects: u32,
    disabled: bool,
    skipped_since_probe: u32,
}

/// The simulated system. See the crate docs for the overall shape.
pub struct System {
    cfg: SimConfig,
    clock: Ns,
    pool: FramePool,
    vm: Vm,
    fs: FileSystem,
    file_cache: BufferCache,
    cache: Option<CompressionCache>,
    cc_swap: Option<FileId>,
    std_swap: HashMap<SegId, FileId>,
    stats: SystemStats,
    /// Virtual-time fault-latency histograms (see [`SIM_TELEMETRY`]).
    tel: Telemetry,
    adaptive: AdaptiveState,
    page_scratch: Vec<u8>,
    /// Total virtual pages over all created segments (overhead report).
    vm_total_pages: u64,
    /// When enabled, `(time, cache frames)` samples taken at faults.
    size_trace: Option<Vec<(Ns, usize)>>,
}

impl System {
    /// Build a system from configuration.
    pub fn new(cfg: SimConfig) -> Self {
        assert_eq!(
            cfg.page_bytes as u32, cfg.disk.block_bytes,
            "reproduction assumes one-to-one page/block mapping (§4.3)"
        );
        let pool = FramePool::new(cfg.frames(), cfg.page_bytes);
        let mut fs = FileSystem::new(Disk::new(cfg.disk.clone()));
        let (cache, cc_swap) = match cfg.mode {
            Mode::Std => (None, None),
            Mode::Cc => {
                let ccfg = CacheConfig {
                    page_bytes: cfg.page_bytes,
                    fragment_bytes: cfg.cc.fragment_bytes,
                    cluster_bytes: cfg.cc.cluster_bytes,
                    block_bytes: cfg.disk.block_bytes as usize,
                    allow_span: cfg.cc.allow_span,
                    threshold: cfg.cc.threshold,
                    max_slots: cfg.frames(),
                    entry_header_bytes: 36,
                    frame_header_bytes: 24,
                    swap_readahead: cfg.cc.swap_readahead,
                };
                let codec: Box<dyn Compressor> = match cfg.cc.codec {
                    CodecKind::Lzrw1 { table_bytes } => {
                        Box::new(Lzrw1::with_table_bytes(table_bytes))
                    }
                    CodecKind::Lzss => Box::new(Lzss::new()),
                    CodecKind::Rle => Box::new(Rle::new()),
                    CodecKind::Null => Box::new(Null::new()),
                };
                let swap_blocks = cfg.cc.swap_bytes / cfg.disk.block_bytes as u64;
                let file = fs.create("ccswap", swap_blocks);
                (
                    Some(CompressionCache::new(
                        ccfg,
                        codec,
                        cfg.cpu,
                        cfg.cc.swap_bytes,
                    )),
                    Some(file),
                )
            }
        };
        let page_bytes = cfg.page_bytes;
        System {
            cfg,
            clock: Ns::ZERO,
            pool,
            vm: Vm::new(),
            fs,
            file_cache: BufferCache::new(),
            cache,
            cc_swap,
            std_swap: HashMap::new(),
            stats: SystemStats::default(),
            tel: Telemetry::new(SIM_TELEMETRY, 1),
            adaptive: AdaptiveState::default(),
            page_scratch: vec![0u8; page_bytes],
            vm_total_pages: 0,
            size_trace: None,
        }
    }

    // ------------------------------------------------------------------
    // Workload-facing API
    // ------------------------------------------------------------------

    /// Create a segment of `bytes` (rounded up to whole pages).
    pub fn create_segment(&mut self, bytes: u64) -> SegId {
        let pb = self.cfg.page_bytes as u64;
        let npages = bytes.div_ceil(pb) as u32;
        self.vm_total_pages += npages as u64;
        let seg = self.vm.create_segment(npages);
        if self.cfg.mode == Mode::Std {
            // Fixed-mapping swap file, one block per page (§4.3's "trivial
            // to locate a page on the backing store").
            let file = self.fs.create(&format!("swap{}", seg.0), npages as u64);
            self.std_swap.insert(seg, file);
        }
        seg
    }

    /// Tear down a segment, releasing every frame, cache entry, and swap
    /// copy it holds.
    pub fn release_segment(&mut self, seg: SegId) {
        let npages = self.vm.segment_pages(seg);
        for page in 0..npages {
            let vp = cc_vm::VPage { seg, page };
            if let cc_vm::PageState::Resident { .. } = self.vm.state(vp) {
                let (_, frame, _) = self.vm.take_resident(vp);
                self.vm.set_swapped(vp);
                self.pool.free(frame);
            }
            if let Some(cache) = self.cache.as_mut() {
                cache.drop_page(PageKey { seg: seg.0, page });
            }
        }
        self.drain_cc_transitions();
    }

    /// Charge pure computation time to the workload.
    pub fn compute(&mut self, t: Ns) {
        self.clock += t;
        self.stats.compute_time += t;
    }

    /// Current virtual time.
    pub fn now(&self) -> Ns {
        self.clock
    }

    /// Read a little-endian u32 at `(seg, offset)`.
    pub fn read_u32(&mut self, seg: SegId, offset: u64) -> u32 {
        let pb = self.cfg.page_bytes as u64;
        let po = (offset % pb) as usize;
        assert!(po + 4 <= pb as usize, "unaligned u32 across page boundary");
        let frame = self.access(seg, offset, false);
        let d = self.pool.data(frame);
        u32::from_le_bytes([d[po], d[po + 1], d[po + 2], d[po + 3]])
    }

    /// Write a little-endian u32 at `(seg, offset)`.
    pub fn write_u32(&mut self, seg: SegId, offset: u64, value: u32) {
        let pb = self.cfg.page_bytes as u64;
        let po = (offset % pb) as usize;
        assert!(po + 4 <= pb as usize, "unaligned u32 across page boundary");
        let frame = self.access(seg, offset, true);
        self.pool.data_mut(frame)[po..po + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Read a little-endian u16 at `(seg, offset)`.
    pub fn read_u16(&mut self, seg: SegId, offset: u64) -> u16 {
        let pb = self.cfg.page_bytes as u64;
        let po = (offset % pb) as usize;
        assert!(po + 2 <= pb as usize, "unaligned u16 across page boundary");
        let frame = self.access(seg, offset, false);
        let d = self.pool.data(frame);
        u16::from_le_bytes([d[po], d[po + 1]])
    }

    /// Write a little-endian u16 at `(seg, offset)`.
    pub fn write_u16(&mut self, seg: SegId, offset: u64, value: u16) {
        let pb = self.cfg.page_bytes as u64;
        let po = (offset % pb) as usize;
        assert!(po + 2 <= pb as usize, "unaligned u16 across page boundary");
        let frame = self.access(seg, offset, true);
        self.pool.data_mut(frame)[po..po + 2].copy_from_slice(&value.to_le_bytes());
    }

    /// Read one byte.
    pub fn read_u8(&mut self, seg: SegId, offset: u64) -> u8 {
        let pb = self.cfg.page_bytes as u64;
        let po = (offset % pb) as usize;
        let frame = self.access(seg, offset, false);
        self.pool.data(frame)[po]
    }

    /// Write one byte.
    pub fn write_u8(&mut self, seg: SegId, offset: u64, value: u8) {
        let pb = self.cfg.page_bytes as u64;
        let po = (offset % pb) as usize;
        let frame = self.access(seg, offset, true);
        self.pool.data_mut(frame)[po] = value;
    }

    /// Bulk read crossing pages; charges one reference per word.
    pub fn read_slice(&mut self, seg: SegId, offset: u64, out: &mut [u8]) {
        let pb = self.cfg.page_bytes as u64;
        let mut done = 0usize;
        while done < out.len() {
            let off = offset + done as u64;
            let po = (off % pb) as usize;
            let chunk = (pb as usize - po).min(out.len() - done);
            let words = (chunk as u64).div_ceil(4);
            let extra = self.cfg.mem_ref * words.saturating_sub(1);
            self.clock += extra;
            self.stats.mem_ref_time += extra;
            let frame = self.access(seg, off, false);
            out[done..done + chunk].copy_from_slice(&self.pool.data(frame)[po..po + chunk]);
            done += chunk;
        }
    }

    /// Bulk write crossing pages; charges one reference per word.
    pub fn write_slice(&mut self, seg: SegId, offset: u64, data: &[u8]) {
        let pb = self.cfg.page_bytes as u64;
        let mut done = 0usize;
        while done < data.len() {
            let off = offset + done as u64;
            let po = (off % pb) as usize;
            let chunk = (pb as usize - po).min(data.len() - done);
            let words = (chunk as u64).div_ceil(4);
            let extra = self.cfg.mem_ref * words.saturating_sub(1);
            self.clock += extra;
            self.stats.mem_ref_time += extra;
            let frame = self.access(seg, off, true);
            self.pool.data_mut(frame)[po..po + chunk].copy_from_slice(&data[done..done + chunk]);
            done += chunk;
        }
    }

    // ------------------------------------------------------------------
    // File API (exercises the buffer cache and the three-way trade)
    // ------------------------------------------------------------------

    /// Create a file of `blocks` file-system blocks.
    pub fn file_create(&mut self, name: &str, blocks: u64) -> FileId {
        self.fs.create(name, blocks)
    }

    /// Read through the buffer cache.
    pub fn file_read(&mut self, file: FileId, offset: u64, out: &mut [u8]) {
        let bb = self.fs.block_bytes() as u64;
        let mut done = 0usize;
        while done < out.len() {
            let off = offset + done as u64;
            let block = off / bb;
            let po = (off % bb) as usize;
            let chunk = (bb as usize - po).min(out.len() - done);
            let key = CacheBlockKey { file, block };
            let frame = match self.file_cache.lookup(key, self.clock) {
                Some(f) => {
                    self.stats.file_hits += 1;
                    f
                }
                None => {
                    self.stats.file_misses += 1;
                    self.ensure_free_frame();
                    match self.try_fill_from_compressed_file_cache(key) {
                        Some(f) => f,
                        None => {
                            let (f, done_at) = read_block_through(
                                &mut self.file_cache,
                                &mut self.pool,
                                &mut self.fs,
                                self.clock,
                                key,
                            );
                            self.clock = self.clock.max(done_at);
                            f
                        }
                    }
                }
            };
            out[done..done + chunk].copy_from_slice(&self.pool.data(frame)[po..po + chunk]);
            self.clock += self.cfg.mem_ref;
            self.stats.mem_ref_time += self.cfg.mem_ref;
            done += chunk;
        }
    }

    /// Write through the buffer cache (write-back).
    pub fn file_write(&mut self, file: FileId, offset: u64, data: &[u8]) {
        let bb = self.fs.block_bytes() as u64;
        let mut done = 0usize;
        while done < data.len() {
            let off = offset + done as u64;
            let block = off / bb;
            let po = (off % bb) as usize;
            let chunk = (bb as usize - po).min(data.len() - done);
            let key = CacheBlockKey { file, block };
            let frame = match self.file_cache.lookup(key, self.clock) {
                Some(f) => {
                    self.stats.file_hits += 1;
                    f
                }
                None => {
                    self.stats.file_misses += 1;
                    self.ensure_free_frame();
                    match self.try_fill_from_compressed_file_cache(key) {
                        Some(f) => f,
                        None => {
                            let (f, done_at) = read_block_through(
                                &mut self.file_cache,
                                &mut self.pool,
                                &mut self.fs,
                                self.clock,
                                key,
                            );
                            self.clock = self.clock.max(done_at);
                            f
                        }
                    }
                }
            };
            self.pool.data_mut(frame)[po..po + chunk].copy_from_slice(&data[done..done + chunk]);
            self.file_cache.mark_dirty(key);
            self.clock += self.cfg.mem_ref;
            self.stats.mem_ref_time += self.cfg.mem_ref;
            done += chunk;
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// VM counters.
    pub fn vm_stats(&self) -> &VmStats {
        self.vm.stats()
    }

    /// Disk counters.
    pub fn disk_stats(&self) -> &DiskStats {
        self.fs.disk().stats()
    }

    /// Compression-cache counters (None in std mode).
    pub fn core_stats(&self) -> Option<&CoreStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// System counters.
    pub fn sys_stats(&self) -> &SystemStats {
        &self.stats
    }

    /// Who holds the machine's frames right now (the §4.2 three-way
    /// split).
    pub fn frame_counts(&self) -> cc_mem::FrameCounts {
        self.pool.counts()
    }

    /// §4.4 memory-overhead report for the current instant (None in std
    /// mode).
    pub fn overhead_report(&self) -> Option<OverheadReport> {
        let cache = self.cache.as_ref()?;
        let table_bytes = match self.cfg.cc.codec {
            CodecKind::Lzrw1 { table_bytes } => table_bytes as u64,
            _ => 0,
        };
        Some(OverheadReport::compute(
            cache.config(),
            self.vm_total_pages,
            cache.mapped_frames() as u64,
            cache.live_entries() as u64,
            table_bytes,
        ))
    }

    /// The simulator's telemetry: per-fault-class virtual-time latency
    /// histograms (`fault_zero_fill`, `fault_cc`, `fault_std`).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// A telemetry snapshot with the frame-split gauges attached.
    pub fn telemetry_snapshot(&self) -> cc_telemetry::Snapshot {
        let counts = self.pool.counts();
        self.tel
            .snapshot()
            .gauge("frames_vm", counts.vm as u64)
            .gauge("frames_file_cache", counts.file_cache as u64)
            .gauge("frames_compression_cache", counts.compression_cache as u64)
    }

    /// Assemble the end-of-run report.
    pub fn report(&self) -> SystemReport {
        let mut report = SystemReport::assemble(
            match self.cfg.mode {
                Mode::Std => "std",
                Mode::Cc => "cc",
            },
            self.clock,
            self.cfg.page_bytes,
            &self.stats,
            self.vm.stats(),
            self.fs.disk().stats(),
            self.core_stats(),
        );
        report.fault_latency = top::NAMES
            .iter()
            .enumerate()
            .map(|(i, &n)| (n.to_string(), self.tel.op_summary(i)))
            .filter(|(_, s)| s.count > 0)
            .collect();
        report
    }

    /// Cross-structure consistency check (tests).
    pub fn check_invariants(&self) {
        self.vm.check_invariants();
        if let Some(c) = &self.cache {
            c.check_invariants();
        }
        let counts = self.pool.counts();
        assert_eq!(counts.vm, self.vm.resident_count(), "vm frame count");
        assert_eq!(counts.file_cache, self.file_cache.len(), "fs frame count");
        let cc_frames = self.cache.as_ref().map(|c| c.mapped_frames()).unwrap_or(0);
        assert_eq!(counts.compression_cache, cc_frames, "cc frame count");
    }

    // ------------------------------------------------------------------
    // Fault path
    // ------------------------------------------------------------------

    fn access(&mut self, seg: SegId, offset: u64, write: bool) -> FrameId {
        let pb = self.cfg.page_bytes as u64;
        let vp = cc_vm::VPage {
            seg,
            page: (offset / pb) as u32,
        };
        self.clock += self.cfg.mem_ref;
        self.stats.mem_ref_time += self.cfg.mem_ref;
        match self.vm.access(vp, write, self.clock) {
            AccessResult::Hit { frame } => frame,
            AccessResult::Fault { kind } => {
                let frame = self.service_fault(vp, kind);
                // The faulting access was a write: the page was installed
                // clean, so mark it dirty now.
                if write {
                    self.vm.mark_dirty(vp);
                }
                frame
            }
        }
    }

    fn service_fault(&mut self, vp: cc_vm::VPage, kind: FaultKind) -> FrameId {
        let fault_start = self.clock;
        self.clock += self.cfg.fault_overhead;
        self.stats.fault_overhead_time += self.cfg.fault_overhead;
        self.ensure_free_frame();

        let op = match kind {
            FaultKind::ZeroFill => top::FAULT_ZERO_FILL,
            FaultKind::Compressed | FaultKind::Swapped => match self.cfg.mode {
                Mode::Cc => top::FAULT_CC,
                Mode::Std => top::FAULT_STD,
            },
        };
        let frame = match kind {
            FaultKind::ZeroFill => {
                let frame = self
                    .pool
                    .alloc(FrameOwner::Vm { tag: vp.tag() })
                    .expect("ensure_free_frame must leave a frame");
                self.pool.zero(frame);
                let t = self.cfg.cpu.memcpy_time(self.cfg.page_bytes);
                self.clock += t;
                // Zero-filled pages are dirty: their contents exist nowhere
                // else yet.
                self.vm.install(vp, frame, true, self.clock);
                frame
            }
            FaultKind::Compressed | FaultKind::Swapped => match self.cfg.mode {
                Mode::Cc => self.cc_fault(vp),
                Mode::Std => self.std_swapin(vp),
            },
        };

        self.cleaner_tick();
        self.sample_cc_size();
        // Virtual time the faulting access waited, arbiter and cleaner
        // work included — the number a Table 2/3 breakdown measures.
        self.tel.record(op, (self.clock - fault_start).0);
        frame
    }

    fn cc_fault(&mut self, vp: cc_vm::VPage) -> FrameId {
        let key = PageKey {
            seg: vp.seg.0,
            page: vp.page,
        };
        let cache = self.cache.as_mut().expect("cc_fault in std mode");
        let mut backing = FsBacking {
            fs: &mut self.fs,
            file: self.cc_swap.expect("cc swap file"),
        };
        let outcome = cache.fault(
            &mut self.pool,
            &mut backing,
            &mut self.clock,
            key,
            &mut self.page_scratch,
            false,
        );
        if outcome == FaultOutcome::Miss {
            panic!("PTE says compressed/swapped but cache lost {vp:?}")
        }
        let frame = self
            .pool
            .alloc(FrameOwner::Vm { tag: vp.tag() })
            .expect("ensure_free_frame must leave a frame");
        self.pool
            .data_mut(frame)
            .copy_from_slice(&self.page_scratch);
        self.vm.install(vp, frame, false, self.clock);
        self.drain_cc_transitions();
        frame
    }

    fn std_swapin(&mut self, vp: cc_vm::VPage) -> FrameId {
        let file = *self.std_swap.get(&vp.seg).expect("std swap file");
        let pb = self.cfg.page_bytes as u64;
        let done = self.fs.read_bytes(
            self.clock,
            file,
            vp.page as u64 * pb,
            &mut self.page_scratch,
        );
        self.clock = done;
        self.stats.std_swapins += 1;
        let frame = self
            .pool
            .alloc(FrameOwner::Vm { tag: vp.tag() })
            .expect("ensure_free_frame must leave a frame");
        self.pool
            .data_mut(frame)
            .copy_from_slice(&self.page_scratch);
        self.vm.install(vp, frame, false, self.clock);
        frame
    }

    // ------------------------------------------------------------------
    // The three-way memory arbiter (§4.2)
    // ------------------------------------------------------------------

    fn ensure_free_frame(&mut self) {
        let mut guard = 0usize;
        while self.pool.free_frames() == 0 {
            guard += 1;
            assert!(
                guard <= 10 * self.pool.total_frames(),
                "arbiter failed to free a frame"
            );
            // Free wins first: garbage frames inside the cache.
            if let Some(c) = self.cache.as_mut() {
                if c.reclaimable_now() > 0 {
                    let mut backing = FsBacking {
                        fs: &mut self.fs,
                        file: self.cc_swap.unwrap(),
                    };
                    c.release_frame(&mut self.pool, &mut backing, &mut self.clock);
                    self.drain_cc_transitions();
                    continue;
                }
            }
            match self.pick_victim_class() {
                VictimClass::Vm => self.evict_vm_page(),
                VictimClass::FileCache => self.evict_fs_block(),
                VictimClass::CompressionCache => self.shrink_cc(),
            }
        }
    }

    /// Compare the biased ages of the oldest page of each class (§4.2:
    /// "allocation ... requires a comparison of the ages of the oldest
    /// pages for all three types. The system biases the ages to favor
    /// compressed pages over uncompressed pages and both of these over
    /// file cache blocks.").
    fn pick_victim_class(&self) -> VictimClass {
        let now = self.clock;
        let mut best: Option<(Ns, VictimClass)> = None;
        if let Some((_, t)) = self.vm.oldest_resident() {
            let eff = now.saturating_sub(t) + self.cfg.cc.vm_age_penalty;
            best = Some((eff, VictimClass::Vm));
        }
        if let Some(t) = self.file_cache.oldest_access() {
            let eff = now.saturating_sub(t) + self.cfg.cc.fs_age_penalty;
            if best.is_none_or(|(b, _)| eff > b) {
                best = Some((eff, VictimClass::FileCache));
            }
        }
        if let Some(c) = &self.cache {
            if let Some(t) = c.oldest_stamp() {
                let raw = now.saturating_sub(t);
                let eff = Ns((raw.as_ns() as f64 * self.cfg.cc.cc_age_scale) as u64);
                if best.is_none_or(|(b, _)| eff > b) {
                    best = Some((eff, VictimClass::CompressionCache));
                }
            }
        }
        best.map(|(_, v)| v)
            .expect("no evictable memory anywhere: machine too small for kernel state")
    }

    fn evict_vm_page(&mut self) {
        let (vp, frame, dirty) = self
            .vm
            .take_oldest_resident()
            .expect("arbiter chose VM but nothing resident");
        match self.cfg.mode {
            Mode::Std => {
                if dirty {
                    let file = *self.std_swap.get(&vp.seg).expect("std swap file");
                    let pb = self.cfg.page_bytes as u64;
                    // Asynchronous page-out; later reads queue behind it.
                    self.page_scratch.copy_from_slice(self.pool.data(frame));
                    let scratch = std::mem::take(&mut self.page_scratch);
                    self.fs
                        .write_bytes(self.clock, file, vp.page as u64 * pb, &scratch);
                    self.page_scratch = scratch;
                    self.stats.std_swapouts += 1;
                }
                self.vm.set_swapped(vp);
                self.pool.free(frame);
            }
            Mode::Cc => {
                let key = PageKey {
                    seg: vp.seg.0,
                    page: vp.page,
                };
                self.stats.cc_evictions += 1;
                let cache = self.cache.as_mut().expect("cc mode");
                if !dirty {
                    match cache.evict_clean(key) {
                        CleanEvictOutcome::ToCompressed => {
                            self.vm.set_compressed(vp);
                            self.pool.free(frame);
                            return;
                        }
                        CleanEvictOutcome::ToSwap => {
                            self.vm.set_swapped(vp);
                            self.pool.free(frame);
                            return;
                        }
                        CleanEvictOutcome::NeedStore => {}
                    }
                }
                // Dirty (or clean-with-no-copy): the data must be preserved.
                let skip_compression = self.adaptive_should_skip();
                self.page_scratch.copy_from_slice(self.pool.data(frame));
                self.pool.free(frame);
                let scratch = std::mem::take(&mut self.page_scratch);
                let mut backing = FsBacking {
                    fs: &mut self.fs,
                    file: self.cc_swap.unwrap(),
                };
                let cache = self.cache.as_mut().unwrap();
                let outcome = if skip_compression {
                    cache.store_raw(&mut backing, &mut self.clock, key, &scratch);
                    InsertOutcome::Rejected { compressed_len: 0 }
                } else {
                    cache.insert_evicted(
                        &mut self.pool,
                        &mut backing,
                        &mut self.clock,
                        key,
                        &scratch,
                        true,
                    )
                };
                self.adaptive_note(&outcome);
                self.page_scratch = scratch;
                match outcome {
                    InsertOutcome::Stored { .. } => self.vm.set_compressed(vp),
                    InsertOutcome::StoredToSwap { .. }
                    | InsertOutcome::Rejected { .. }
                    | InsertOutcome::CleanOnSwap => self.vm.set_swapped(vp),
                    InsertOutcome::KeptClean => self.vm.set_compressed(vp),
                }
                self.drain_cc_transitions();
            }
        }
    }

    fn evict_fs_block(&mut self) {
        let evicted = self
            .file_cache
            .evict_lru()
            .expect("arbiter chose FS but cache empty");
        if evicted.dirty {
            let bb = self.fs.block_bytes() as u64;
            let data = self.pool.data(evicted.frame).to_vec();
            self.fs
                .write_bytes(self.clock, evicted.key.file, evicted.key.block * bb, &data);
        }
        // §6 extension: retain a discardable compressed copy so a future
        // re-read decompresses instead of hitting the disk. A clean block
        // whose copy is still in the cache needs no recompression (the
        // same optimization the VM path gets from `evict_clean`).
        if self.cfg.mode == Mode::Cc && self.cfg.cc.compress_file_cache {
            let key = file_block_key(evicted.key.file, evicted.key.block);
            let cache = self.cache.as_mut().expect("cc mode");
            if !evicted.dirty && cache.contains_entry(key) {
                self.pool.free(evicted.frame);
                return;
            }
            self.page_scratch
                .copy_from_slice(self.pool.data(evicted.frame));
            self.pool.free(evicted.frame);
            let scratch = std::mem::take(&mut self.page_scratch);
            let cache = self.cache.as_mut().expect("cc mode");
            cache.insert_discardable(&mut self.pool, &mut self.clock, key, &scratch, true);
            self.page_scratch = scratch;
            return;
        }
        self.pool.free(evicted.frame);
    }

    /// Serve a file-cache miss from the compressed file cache, if the
    /// extension is on and the block is present. Allocates a frame,
    /// decompresses into it, and installs it in the buffer cache.
    fn try_fill_from_compressed_file_cache(&mut self, key: CacheBlockKey) -> Option<FrameId> {
        if self.cfg.mode != Mode::Cc || !self.cfg.cc.compress_file_cache {
            return None;
        }
        let cache = self.cache.as_mut()?;
        let ckey = file_block_key(key.file, key.block);
        let mut scratch = std::mem::take(&mut self.page_scratch);
        let hit = cache.fetch_discardable(&self.pool, &mut self.clock, ckey, &mut scratch);
        let result = if hit {
            self.stats.file_cc_hits += 1;
            let frame = self
                .pool
                .alloc(FrameOwner::FileCache {
                    tag: (key.file.0 as u64) << 32 | key.block,
                })
                .expect("ensure_free_frame must leave a frame");
            self.pool.data_mut(frame).copy_from_slice(&scratch);
            self.file_cache.insert(key, frame, self.clock, false);
            Some(frame)
        } else {
            None
        };
        self.page_scratch = scratch;
        result
    }

    fn shrink_cc(&mut self) {
        let mut backing = FsBacking {
            fs: &mut self.fs,
            file: self.cc_swap.unwrap(),
        };
        let cache = self.cache.as_mut().expect("cc mode");
        if cache
            .release_frame(&mut self.pool, &mut backing, &mut self.clock)
            .is_none()
        {
            // Cache has nothing left; take from VM instead.
            self.evict_vm_page();
            return;
        }
        self.drain_cc_transitions();
    }

    /// Background cleaner approximation: keep a pool of clean/free frames
    /// ahead of demand (§4.2's kernel thread).
    fn cleaner_tick(&mut self) {
        let Some(cache) = self.cache.as_mut() else {
            return;
        };
        // Supply of frames obtainable without new I/O: free frames, dead
        // space, and entries droppable outright (shadowed or already
        // written). The cleaner only runs when that supply is short —
        // §4.2's "pool of physical pages clean and ready for reclamation".
        let droppable_frames =
            (cache.droppable_bytes(self.clock) / self.cfg.page_bytes as u64) as usize;
        let slack = self.pool.free_frames() + cache.reclaimable_now() + droppable_frames;
        if slack < self.cfg.cc.cleaner_low_frames && cache.dirty_bytes() > 0 {
            let mut backing = FsBacking {
                fs: &mut self.fs,
                file: self.cc_swap.unwrap(),
            };
            cache.clean_batch(&mut self.pool, &mut backing, &mut self.clock);
        }
    }

    fn sample_cc_size(&mut self) {
        if let Some(c) = &self.cache {
            let frames = c.mapped_frames();
            self.stats.cc_size_samples += 1;
            self.stats.cc_size_sum += frames as u64;
            self.stats.cc_size_peak = self.stats.cc_size_peak.max(frames);
            if let Some(trace) = &mut self.size_trace {
                trace.push((self.clock, frames));
            }
        }
    }

    /// Start recording `(time, cache frames)` samples at every fault —
    /// the data behind the §4.2 dynamic-sizing exhibit.
    pub fn enable_size_trace(&mut self) {
        self.size_trace = Some(Vec::new());
    }

    /// The recorded size trace (empty unless enabled).
    pub fn size_trace(&self) -> &[(Ns, usize)] {
        self.size_trace.as_deref().unwrap_or(&[])
    }

    fn drain_cc_transitions(&mut self) {
        let Some(cache) = self.cache.as_mut() else {
            return;
        };
        for key in cache.take_moved_to_swap() {
            if key.seg & FILE_KEY_BIT != 0 {
                // Compressed file-cache blocks have no PTE; their home is
                // their file. (Discardable entries never report here, but
                // guard anyway.)
                continue;
            }
            let vp = cc_vm::VPage {
                seg: SegId(key.seg),
                page: key.page,
            };
            if matches!(self.vm.state(vp), cc_vm::PageState::Compressed) {
                self.vm.set_swapped(vp);
            }
        }
    }

    // ------------------------------------------------------------------
    // Adaptive disable (§5.2 / §6 future work, as an option)
    // ------------------------------------------------------------------

    fn adaptive_should_skip(&mut self) -> bool {
        let cfg = &self.cfg.cc;
        if cfg.adaptive_disable_after == 0 || !self.adaptive.disabled {
            return false;
        }
        self.adaptive.skipped_since_probe += 1;
        if self.adaptive.skipped_since_probe >= cfg.adaptive_reprobe {
            // Probe: try compressing this one.
            self.adaptive.skipped_since_probe = 0;
            return false;
        }
        true
    }

    fn adaptive_note(&mut self, outcome: &InsertOutcome) {
        if self.cfg.cc.adaptive_disable_after == 0 {
            return;
        }
        match outcome {
            InsertOutcome::Rejected { .. } => {
                self.adaptive.consecutive_rejects += 1;
                if self.adaptive.consecutive_rejects >= self.cfg.cc.adaptive_disable_after {
                    self.adaptive.disabled = true;
                }
            }
            InsertOutcome::Stored { .. } | InsertOutcome::StoredToSwap { .. } => {
                self.adaptive.consecutive_rejects = 0;
                self.adaptive.disabled = false;
            }
            _ => {}
        }
    }
}
