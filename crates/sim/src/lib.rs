//! Whole-system virtual-time simulator.
//!
//! This crate wires every substrate together the way the modified Sprite
//! kernel does: a [`cc_vm::Vm`] over a shared [`cc_mem::FramePool`], a
//! [`cc_blockfs::FileSystem`] on a [`cc_disk::Disk`], an optional
//! [`cc_core::CompressionCache`], and — the §4.2 contribution — a
//! **three-way memory arbiter** that trades physical frames among
//! uncompressed VM pages, file-cache blocks, and compressed pages by
//! comparing biased LRU ages.
//!
//! Workloads drive [`System`] through word- and slice-granularity reads
//! and writes on segments; every cost (memory reference, fault overhead,
//! compression, copies, disk time) advances one deterministic virtual
//! clock. The same [`System`] runs in two modes:
//!
//! - [`Mode::Std`] — the unmodified system: evicted dirty pages go
//!   straight to a per-segment swap file at a fixed page-to-block offset
//!   (two seeks per thrashing fault, §5.1);
//! - [`Mode::Cc`] — the compression cache interposed, with the paper's
//!   fragment/batch backing-store interface.
//!
//! The *only* code that differs between the modes is the eviction and
//! fault-service policy — the measurement plumbing is shared, which keeps
//! the std-vs-cc comparisons honest.

#![warn(missing_docs)]

pub mod config;
pub mod stats;
pub mod system;

pub use config::{CcParams, CodecKind, Mode, SimConfig};
pub use stats::{SystemReport, SystemStats};
pub use system::System;
