//! Whole-system tests: data integrity through every paging path, and the
//! first-order performance shapes the paper predicts.

use cc_sim::{Mode, SimConfig, System};
use cc_util::SplitMix64;

const MB: usize = 1024 * 1024;

fn small_system(mode: Mode, memory_mb: usize) -> System {
    System::new(SimConfig::decstation(memory_mb * MB, mode))
}

#[test]
fn reads_your_writes_within_memory() {
    for mode in [Mode::Std, Mode::Cc] {
        let mut sys = small_system(mode, 4);
        let seg = sys.create_segment(MB as u64);
        for i in 0..100u64 {
            sys.write_u32(seg, i * 4096 % MB as u64 + (i * 4) % 4000, i as u32);
        }
        for i in 0..100u64 {
            let v = sys.read_u32(seg, i * 4096 % MB as u64 + (i * 4) % 4000);
            assert_eq!(v, i as u32, "mode {mode:?}");
        }
        sys.check_invariants();
    }
}

#[test]
fn untouched_pages_read_zero() {
    for mode in [Mode::Std, Mode::Cc] {
        let mut sys = small_system(mode, 4);
        let seg = sys.create_segment(MB as u64);
        assert_eq!(sys.read_u32(seg, 123_456), 0, "{mode:?}");
        assert_eq!(sys.read_u8(seg, 999), 0, "{mode:?}");
    }
}

/// Fill an address space twice the size of memory, then read it all back:
/// every byte must survive eviction through whichever path it took.
#[test]
fn integrity_under_heavy_paging() {
    for mode in [Mode::Std, Mode::Cc] {
        let mut sys = small_system(mode, 2); // 512 frames
        let space = 4 * MB as u64; // 1024 pages
        let seg = sys.create_segment(space);
        let mut rng = SplitMix64::new(42);
        // Write a deterministic pattern: word = hash(page, slot).
        for page in 0..(space / 4096) {
            for slot in 0..4u64 {
                let off = page * 4096 + slot * 1000;
                sys.write_u32(seg, off, (page * 31 + slot * 7) as u32);
            }
        }
        // Random revisits.
        for _ in 0..2000 {
            let page = rng.gen_range(space / 4096);
            let slot = rng.gen_range(4);
            let off = page * 4096 + slot * 1000;
            let v = sys.read_u32(seg, off);
            assert_eq!(
                v,
                (page * 31 + slot * 7) as u32,
                "mode {mode:?} page {page}"
            );
        }
        sys.check_invariants();
        assert!(sys.vm_stats().faults() > 0, "workload must page");
    }
}

/// Mixed read/write paging with random page contents of varying
/// compressibility — the cc path must never corrupt data even when many
/// pages fail the threshold.
#[test]
fn integrity_with_incompressible_pages() {
    let mut sys = small_system(Mode::Cc, 2);
    let space = 5 * MB as u64;
    let seg = sys.create_segment(space);
    let npages = space / 4096;
    let mut rng = SplitMix64::new(7);
    let mut expected: Vec<u32> = vec![0; npages as usize];
    // Fill pages: even pages compressible (word pattern), odd pages random
    // noise via many distinct writes.
    for p in 0..npages {
        let base = p * 4096;
        if p % 2 == 0 {
            sys.write_u32(seg, base, p as u32);
            expected[p as usize] = p as u32;
        } else {
            // Scatter noise across the page so it fails the threshold.
            let mut noise = vec![0u8; 4096];
            for b in noise.iter_mut() {
                *b = rng.next_u64() as u8;
            }
            sys.write_slice(seg, base, &noise);
            let tag = u32::from_le_bytes([noise[0], noise[1], noise[2], noise[3]]);
            expected[p as usize] = tag;
        }
    }
    for p in 0..npages {
        let v = sys.read_u32(seg, p * 4096);
        assert_eq!(v, expected[p as usize], "page {p}");
    }
    let core = sys.core_stats().unwrap();
    assert!(
        core.compress_rejected > 0,
        "noise pages should fail the threshold: {core:?}"
    );
    assert!(core.compress_kept > 0);
    sys.check_invariants();
}

/// The headline claim: a cyclic working set slightly larger than memory,
/// with compressible contents, runs much faster with the compression cache
/// because faults become decompressions instead of disk I/O.
#[test]
fn cc_beats_std_on_compressible_thrash() {
    let mut times = Vec::new();
    for mode in [Mode::Std, Mode::Cc] {
        let mut sys = small_system(mode, 2); // 2 MB memory
        let space = 4 * MB as u64; // 2x memory
        let seg = sys.create_segment(space);
        let npages = space / 4096;
        // Two sequential passes, one word per page (thrasher-style).
        for pass in 0..3u64 {
            for p in 0..npages {
                sys.write_u32(seg, p * 4096, (p + pass) as u32);
            }
        }
        times.push(sys.now());
        sys.check_invariants();
    }
    let (std_t, cc_t) = (times[0], times[1]);
    assert!(
        cc_t.as_ns() * 2 < std_t.as_ns(),
        "cc should win big: std={std_t} cc={cc_t}"
    );
}

/// Anti-claim (Table 1's sort_random/gold rows): on incompressible data
/// the cache wastes compression effort and must not win; with the paging
/// pattern identical, it should be at best comparable and typically
/// slower.
#[test]
fn cc_does_not_beat_std_on_incompressible_thrash() {
    let mut times = Vec::new();
    let mut noise_page = vec![0u8; 4096];
    for mode in [Mode::Std, Mode::Cc] {
        let mut sys = small_system(mode, 2);
        let space = 4 * MB as u64;
        let seg = sys.create_segment(space);
        let npages = space / 4096;
        let mut rng = SplitMix64::new(99);
        for pass in 0..3u64 {
            for p in 0..npages {
                if pass == 0 {
                    for b in noise_page.iter_mut() {
                        *b = rng.next_u64() as u8;
                    }
                    sys.write_slice(seg, p * 4096, &noise_page);
                } else {
                    sys.write_u32(seg, p * 4096 + 8, (p + pass) as u32);
                }
            }
        }
        times.push(sys.now());
    }
    let (std_t, cc_t) = (times[0], times[1]);
    assert!(
        cc_t.as_ns() as f64 > std_t.as_ns() as f64 * 0.95,
        "cc must not win on noise: std={std_t} cc={cc_t}"
    );
}

/// The cache must stay out of the way when the working set fits (§3:
/// "if the collective working set ... fits into physical memory without
/// the need to compress pages, the compression cache should stay out of
/// the way").
#[test]
fn cc_stays_out_of_the_way_when_fitting() {
    let mut times = Vec::new();
    for mode in [Mode::Std, Mode::Cc] {
        let mut sys = small_system(mode, 8);
        let seg = sys.create_segment(2 * MB as u64); // fits easily
        for pass in 0..5u64 {
            for p in 0..(2 * MB as u64 / 4096) {
                sys.write_u32(seg, p * 4096, (p + pass) as u32);
            }
        }
        assert_eq!(
            sys.disk_stats().requests(),
            0,
            "{mode:?}: no paging I/O when fitting"
        );
        times.push(sys.now());
    }
    // Identical times: the cc machinery never engaged.
    assert_eq!(times[0], times[1]);
}

#[test]
fn file_cache_trades_memory_with_vm() {
    let mut sys = small_system(Mode::Cc, 2);
    // Fill the file cache by streaming a file larger than memory.
    let file = sys.file_create("data", 1024); // 4 MB
    let mut buf = vec![0u8; 4096];
    for b in 0..1024u64 {
        sys.file_read(file, b * 4096, &mut buf);
    }
    assert!(sys.sys_stats().file_misses > 0);
    sys.check_invariants();
    // Now a VM working set pushes the file blocks out.
    let seg = sys.create_segment(3 * MB as u64);
    for p in 0..(3 * MB as u64 / 4096) {
        sys.write_u32(seg, p * 4096, p as u32);
    }
    sys.check_invariants();
    // File cache must have shrunk below its peak to make room.
    let counts_fs = 1024usize;
    assert!(
        sys.sys_stats().file_hits + sys.sys_stats().file_misses >= counts_fs as u64,
        "sanity"
    );
}

#[test]
fn file_write_read_back_through_cache() {
    let mut sys = small_system(Mode::Std, 4);
    let file = sys.file_create("log", 64);
    let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
    sys.file_write(file, 1000, &data);
    let mut out = vec![0u8; data.len()];
    sys.file_read(file, 1000, &mut out);
    assert_eq!(out, data);
    sys.check_invariants();
}

#[test]
fn release_segment_frees_everything() {
    let mut sys = small_system(Mode::Cc, 2);
    let seg = sys.create_segment(4 * MB as u64);
    for p in 0..(4 * MB as u64 / 4096) {
        sys.write_u32(seg, p * 4096, p as u32);
    }
    sys.release_segment(seg);
    sys.check_invariants();
    // A new segment can use the whole machine again.
    let seg2 = sys.create_segment(MB as u64);
    for p in 0..(MB as u64 / 4096) {
        sys.write_u32(seg2, p * 4096, p as u32);
    }
    for p in 0..(MB as u64 / 4096) {
        assert_eq!(sys.read_u32(seg2, p * 4096), p as u32);
    }
}

#[test]
fn overhead_report_reflects_state() {
    let mut sys = small_system(Mode::Cc, 2);
    let seg = sys.create_segment(4 * MB as u64);
    assert_eq!(
        sys.overhead_report().unwrap().page_table_extension,
        (4 * MB as u64 / 4096) * 8
    );
    for p in 0..(4 * MB as u64 / 4096) {
        sys.write_u32(seg, p * 4096, p as u32);
    }
    let report = sys.overhead_report().unwrap();
    assert!(report.entry_headers > 0, "cache should hold entries");
    assert!(report.frame_headers > 0);
    assert_eq!(report.hash_table, 16 * 1024);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut sys = small_system(Mode::Cc, 2);
        let seg = sys.create_segment(4 * MB as u64);
        let mut rng = SplitMix64::new(1234);
        for _ in 0..5000 {
            let p = rng.gen_range(4 * MB as u64 / 4096);
            if rng.gen_bool(0.5) {
                sys.write_u32(seg, p * 4096, p as u32);
            } else {
                let _ = sys.read_u32(seg, p * 4096);
            }
        }
        (sys.now(), sys.vm_stats().faults(), sys.disk_stats().bytes())
    };
    assert_eq!(run(), run(), "virtual time must be exactly reproducible");
}

#[test]
fn report_renders() {
    let mut sys = small_system(Mode::Cc, 2);
    let seg = sys.create_segment(4 * MB as u64);
    for p in 0..(4 * MB as u64 / 4096) {
        sys.write_u32(seg, p * 4096, p as u32);
    }
    let r = sys.report();
    assert_eq!(r.mode, "cc");
    assert!(r.elapsed_secs > 0.0);
    assert!(r.compress_attempts > 0);
    let text = r.render();
    assert!(text.contains("compression:"));
    // Writing 4 MB through a 2 MB machine zero-fill-faults every page and
    // cc-faults the reclaimed ones; both classes must be measured.
    let zf = r
        .fault_latency
        .iter()
        .find(|(n, _)| n == "fault_zero_fill")
        .expect("zero-fill latency summary missing");
    assert_eq!(zf.1.count, r.faults_zero_fill);
    assert!(zf.1.p50 > 0 && zf.1.p50 <= zf.1.max, "{:?}", zf.1);
    assert!(text.contains("fault_zero_fill:"), "render omits latencies");
}

#[test]
fn fault_latencies_are_virtual_time_and_deterministic() {
    let run = || {
        let mut sys = small_system(Mode::Cc, 2);
        let seg = sys.create_segment(5 * MB as u64);
        for p in 0..(5 * MB as u64 / 4096) {
            sys.write_u32(seg, p * 4096, p as u32);
        }
        for p in 0..(5 * MB as u64 / 4096) {
            assert_eq!(sys.read_u32(seg, p * 4096), p as u32);
        }
        let snap = sys.telemetry_snapshot();
        let cc = snap.op("fault_cc").unwrap();
        (cc.count, cc.p50, cc.p99, cc.max)
    };
    let a = run();
    assert!(a.0 > 0, "sweep past memory never cc-faulted: {a:?}");
    // Virtual-time samples: a re-run is bit-identical, unlike wall time.
    assert_eq!(a, run(), "virtual-time latencies must be reproducible");
}

#[test]
fn adaptive_disable_reduces_wasted_compression() {
    // Stream incompressible pages; with adaptive disable the system stops
    // paying compression on every eviction.
    let run = |adaptive: u32| {
        let mut cfg = SimConfig::decstation(2 * MB, Mode::Cc);
        cfg.cc.adaptive_disable_after = adaptive;
        let mut sys = System::new(cfg);
        let seg = sys.create_segment(6 * MB as u64);
        let mut rng = SplitMix64::new(5);
        let mut page = vec![0u8; 4096];
        for p in 0..(6 * MB as u64 / 4096) {
            for b in page.iter_mut() {
                *b = rng.next_u64() as u8;
            }
            sys.write_slice(seg, p * 4096, &page);
        }
        (sys.now(), sys.core_stats().unwrap().compress_attempts)
    };
    let (t_plain, attempts_plain) = run(0);
    let (t_adaptive, attempts_adaptive) = run(8);
    assert!(
        attempts_adaptive < attempts_plain / 2,
        "adaptive mode must skip most compressions: {attempts_adaptive} vs {attempts_plain}"
    );
    assert!(
        t_adaptive < t_plain,
        "skipping wasted compression must save time: {t_adaptive} vs {t_plain}"
    );
}

/// §6 extension: with `compress_file_cache` on, re-reading a file that was
/// evicted from the buffer cache is served by decompression, not disk.
#[test]
fn compressed_file_cache_cuts_rereads() {
    let run = |flag: bool| {
        let mut cfg = SimConfig::decstation(2 * MB, Mode::Cc);
        cfg.cc.compress_file_cache = flag;
        let mut sys = System::new(cfg);
        let file = sys.file_create("data", 1024); // 4 MB, 2x memory
        let mut buf = vec![0u8; 4096];
        // First pass: cold reads from disk either way.
        for b in 0..1024u64 {
            sys.file_read(file, b * 4096, &mut buf);
        }
        let reads_after_first = sys.disk_stats().reads;
        let t0 = sys.now();
        // Second pass, random order (where re-reads cost seeks): with the
        // extension, evicted blocks come back from the compression cache.
        let mut rng = SplitMix64::new(17);
        for _ in 0..1024u64 {
            let b = rng.gen_range(1024);
            sys.file_read(file, b * 4096, &mut buf);
        }
        (
            sys.disk_stats().reads - reads_after_first,
            (sys.now() - t0).as_secs_f64(),
            sys.sys_stats().file_cc_hits,
        )
    };
    let (reads_off, secs_off, cc_hits_off) = run(false);
    let (reads_on, secs_on, cc_hits_on) = run(true);
    assert_eq!(cc_hits_off, 0);
    assert!(
        cc_hits_on > 200,
        "extension should serve re-reads: {cc_hits_on}"
    );
    assert!(
        reads_on * 2 < reads_off,
        "disk reads should drop: {reads_on} vs {reads_off}"
    );
    assert!(
        secs_on < secs_off,
        "re-read pass should be faster: {secs_on} vs {secs_off}"
    );
}

/// The extension preserves file contents exactly, including for dirty
/// blocks written back before their compressed copy is taken.
#[test]
fn compressed_file_cache_integrity() {
    let mut cfg = SimConfig::decstation(MB, Mode::Cc);
    cfg.cc.compress_file_cache = true;
    let mut sys = System::new(cfg);
    let file = sys.file_create("data", 768); // 3 MB vs 1 MB memory
    let mut rng = SplitMix64::new(123);
    let mut model = vec![0u8; 768 * 4096];
    // Write a patterned file (compressible blocks), then overwrite random
    // ranges, then read everything back twice.
    for b in 0..768u64 {
        let base = (b as usize) * 4096;
        for (i, slot) in model[base..base + 4096].iter_mut().enumerate() {
            *slot = ((b as usize + i / 64) % 251) as u8;
        }
        let chunk = model[base..base + 4096].to_vec();
        sys.file_write(file, base as u64, &chunk);
    }
    for _ in 0..200 {
        let off = rng.gen_index(model.len() - 128);
        let data: Vec<u8> = (0..128).map(|_| rng.next_u64() as u8).collect();
        sys.file_write(file, off as u64, &data);
        model[off..off + 128].copy_from_slice(&data);
    }
    let mut buf = vec![0u8; 4096];
    for pass in 0..2 {
        for b in 0..768u64 {
            sys.file_read(file, b * 4096, &mut buf);
            assert_eq!(
                &buf[..],
                &model[(b as usize) * 4096..(b as usize + 1) * 4096],
                "pass {pass} block {b}"
            );
        }
    }
    sys.check_invariants();
}
