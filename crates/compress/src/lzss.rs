//! LZSS with a 64 KB window and chained hash matching.
//!
//! This is the "slower but better" comparator: §2.2 of the paper notes that
//! off-line users of compression (Taunton's compressed executables, the
//! Xerox PARC paging study) could afford asymmetric algorithms with better
//! ratios. `Lzss` costs roughly 4x LZRW1's compression time (modeled via
//! [`CostProfile`]) in exchange for a noticeably better ratio, letting the
//! ablation benches explore the speed/ratio trade-off axis of Figure 1.

use crate::{load_raw, store_raw, Compressor, CostProfile, DecompressError, METHOD_STORED};

/// Method byte identifying an LZSS-encoded block.
const METHOD_LZSS: u8 = 3;

/// Minimum match length (copies are 3 bytes on the wire).
const MIN_MATCH: usize = 4;
/// Maximum match length (`MIN_MATCH + 255`).
const MAX_MATCH: usize = 259;
/// Window size (16-bit offsets).
const MAX_OFFSET: usize = 65535;
/// Items per control byte.
const GROUP: usize = 8;
/// Hash chain probe depth.
const MAX_CHAIN: usize = 32;

/// The LZSS codec.
///
/// Encoding: groups of 8 items behind a control byte (bit set ⇒ copy).
/// A copy item is `offset: u16 LE` (1..=65535) then `length - MIN_MATCH`
/// as one byte. Falls back to a stored block on expansion.
#[derive(Debug, Clone)]
pub struct Lzss {
    /// Most recent position for each hash bucket.
    head: Vec<usize>,
    /// Previous position with the same hash, per input position.
    prev: Vec<usize>,
}

const HASH_BITS: usize = 14;
const HASH_SIZE: usize = 1 << HASH_BITS;

impl Default for Lzss {
    fn default() -> Self {
        Self::new()
    }
}

impl Lzss {
    /// Create the codec.
    pub fn new() -> Self {
        Lzss {
            head: vec![usize::MAX; HASH_SIZE],
            prev: Vec::new(),
        }
    }

    #[inline]
    fn hash(window: &[u8], i: usize) -> usize {
        let k = u32::from_le_bytes([window[i], window[i + 1], window[i + 2], window[i + 3]]);
        (k.wrapping_mul(2654435761) >> (32 - HASH_BITS as u32)) as usize
    }
}

impl Compressor for Lzss {
    fn name(&self) -> &'static str {
        "lzss"
    }

    fn compress(&mut self, src: &[u8], dst: &mut Vec<u8>) -> usize {
        dst.clear();
        if src.is_empty() {
            dst.push(METHOD_STORED);
            return dst.len();
        }
        self.head.iter_mut().for_each(|e| *e = usize::MAX);
        self.prev.clear();
        self.prev.resize(src.len(), usize::MAX);

        dst.push(METHOD_LZSS);
        let n = src.len();
        let mut i = 0;
        let mut ctrl_pos = dst.len();
        dst.push(0);
        let mut ctrl: u8 = 0;
        let mut items = 0;

        while i < n {
            if items == GROUP {
                dst[ctrl_pos] = ctrl;
                ctrl_pos = dst.len();
                dst.push(0);
                ctrl = 0;
                items = 0;
            }
            let mut best_len = 0;
            let mut best_off = 0;
            if n - i >= MIN_MATCH {
                let h = Self::hash(src, i);
                let mut cand = self.head[h];
                let mut probes = 0;
                while cand != usize::MAX && probes < MAX_CHAIN {
                    if i - cand > MAX_OFFSET {
                        break;
                    }
                    let limit = MAX_MATCH.min(n - i);
                    let mut len = 0;
                    while len < limit && src[cand + len] == src[i + len] {
                        len += 1;
                    }
                    if len > best_len {
                        best_len = len;
                        best_off = i - cand;
                        if len == limit {
                            break;
                        }
                    }
                    cand = self.prev[cand];
                    probes += 1;
                }
                self.prev[i] = self.head[h];
                self.head[h] = i;
            }
            if best_len >= MIN_MATCH {
                ctrl |= 1 << items;
                dst.extend_from_slice(&(best_off as u16).to_le_bytes());
                dst.push((best_len - MIN_MATCH) as u8);
                // Insert hash entries for the covered positions so later
                // matches can reference inside this one.
                let end = (i + best_len).min(n.saturating_sub(MIN_MATCH - 1));
                let mut j = i + 1;
                while j < end {
                    let h = Self::hash(src, j);
                    self.prev[j] = self.head[h];
                    self.head[h] = j;
                    j += 1;
                }
                i += best_len;
            } else {
                dst.push(src[i]);
                i += 1;
            }
            items += 1;
        }
        dst[ctrl_pos] = ctrl;

        if dst.len() > src.len() {
            return store_raw(src, dst);
        }
        dst.len()
    }

    fn decompress(
        &mut self,
        src: &[u8],
        dst: &mut Vec<u8>,
        expected_len: usize,
    ) -> Result<(), DecompressError> {
        let (&method, body) = src.split_first().ok_or(DecompressError::Truncated)?;
        match method {
            METHOD_STORED => return load_raw(body, dst, expected_len),
            METHOD_LZSS => {}
            other => return Err(DecompressError::BadMethod(other)),
        }
        dst.clear();
        dst.reserve(expected_len);
        let mut pos = 0;
        while dst.len() < expected_len {
            if pos >= body.len() {
                return Err(DecompressError::Truncated);
            }
            let ctrl = body[pos];
            pos += 1;
            for bit in 0..GROUP {
                if dst.len() == expected_len {
                    break;
                }
                if ctrl & (1 << bit) != 0 {
                    if pos + 3 > body.len() {
                        return Err(DecompressError::Truncated);
                    }
                    let offset = u16::from_le_bytes([body[pos], body[pos + 1]]) as usize;
                    let len = body[pos + 2] as usize + MIN_MATCH;
                    pos += 3;
                    let at = dst.len();
                    if offset == 0 || offset > at {
                        return Err(DecompressError::BadOffset { offset, at });
                    }
                    if at + len > expected_len {
                        return Err(DecompressError::OutputOverrun);
                    }
                    for k in 0..len {
                        let b = dst[at - offset + k];
                        dst.push(b);
                    }
                } else {
                    if pos >= body.len() {
                        return Err(DecompressError::Truncated);
                    }
                    dst.push(body[pos]);
                    pos += 1;
                }
            }
        }
        if pos != body.len() {
            return Err(DecompressError::TrailingGarbage);
        }
        Ok(())
    }

    fn cost_profile(&self) -> CostProfile {
        // Chained matching costs ~4x LZRW1's single probe; decompression is
        // the same copy loop.
        CostProfile {
            compress_scale: 0.25,
            decompress_scale: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lzrw1;
    use cc_util::SplitMix64;

    fn roundtrip(input: &[u8]) -> usize {
        let mut lz = Lzss::new();
        let mut packed = Vec::new();
        let n = lz.compress(input, &mut packed);
        let mut out = Vec::new();
        lz.decompress(&packed, &mut out, input.len()).unwrap();
        assert_eq!(out, input);
        n
    }

    #[test]
    fn basic_roundtrips() {
        roundtrip(b"");
        roundtrip(b"x");
        roundtrip(b"abcdabcdabcdabcd");
        roundtrip(&[0u8; 8192]);
    }

    #[test]
    fn beats_lzrw1_on_text() {
        let mut rng = SplitMix64::new(17);
        let words = [
            "memory", "page", "cache", "compress", "disk", "fault", "sprite",
        ];
        let mut text = Vec::new();
        while text.len() < 32768 {
            text.extend_from_slice(words[rng.gen_index(words.len())].as_bytes());
            text.push(b' ');
        }
        let lzss_n = roundtrip(&text);
        let mut lzrw = Lzrw1::new();
        let mut buf = Vec::new();
        let lzrw_n = lzrw.compress(&text, &mut buf);
        assert!(
            lzss_n < lzrw_n,
            "lzss {lzss_n} should beat lzrw1 {lzrw_n} on wordy text"
        );
    }

    #[test]
    fn long_range_matches_used() {
        // Identical 1 KB blocks 5 KB apart: LZRW1's 4 KB window cannot see
        // the first copy, LZSS's 64 KB window can. Compare against the same
        // layout with an unrelated second block to isolate the long-range
        // match (whole-input ratios are dominated by the noise filler).
        let mut rng = SplitMix64::new(23);
        let block: Vec<u8> = (0..1024).map(|_| rng.next_u64() as u8).collect();
        let filler: Vec<u8> = (0..5000).map(|_| rng.next_u64() as u8).collect();
        let fresh: Vec<u8> = (0..1024).map(|_| rng.next_u64() as u8).collect();

        let mut matched = block.clone();
        matched.extend_from_slice(&filler);
        matched.extend_from_slice(&block);
        let mut unmatched = block.clone();
        unmatched.extend_from_slice(&filler);
        unmatched.extend_from_slice(&fresh);

        let matched_n = roundtrip(&matched);
        let unmatched_n = roundtrip(&unmatched);
        // The unmatched variant is incompressible and falls back to a
        // stored block (input + 1); the matched variant must beat that by a
        // margin only the long-range copy can explain (literal encoding of
        // the noise alone costs ~12.5% control overhead over stored).
        assert!(
            matched_n + 200 < unmatched_n,
            "long-range match saved too little: {matched_n} vs {unmatched_n}"
        );
    }

    #[test]
    fn max_match_boundary() {
        for len in [MIN_MATCH, MAX_MATCH, MAX_MATCH + 1, 3 * MAX_MATCH + 2] {
            roundtrip(&vec![b'q'; len]);
        }
    }

    #[test]
    fn truncation_rejected() {
        let input = b"mississippi mississippi mississippi".to_vec();
        let mut lz = Lzss::new();
        let mut packed = Vec::new();
        lz.compress(&input, &mut packed);
        for cut in 0..packed.len() {
            let mut out = Vec::new();
            assert!(lz
                .decompress(&packed[..cut], &mut out, input.len())
                .is_err());
        }
    }
}
