//! On-line page compressors for the compression cache.
//!
//! The paper compresses 4 KB VM pages with Ross Williams's **LZRW1**
//! (Data Compression Conference, 1991), chosen because it is fast enough to
//! run on every page-out and decompresses about twice as fast as it
//! compresses. This crate provides:
//!
//! - [`lzrw1::Lzrw1`] — a from-scratch LZRW1 implementation with a
//!   configurable hash table (the paper's kernel used a 16 KB table, §4.4);
//! - [`lzss::Lzss`] — a slower, better-compressing LZ comparator standing in
//!   for the "especially effective (but slower) off-line algorithms" of
//!   §2.2 (Taunton; Atkinson et al.);
//! - [`rle::Rle`] — a trivially fast run-length codec, useful for
//!   zero-dominated pages and as a lower bound on compression effort;
//! - [`null::Null`] — the identity codec, the "no compression" baseline;
//! - [`bdi::Bdi`] — a single-pass base+delta-immediate word-pattern codec
//!   (Pekhimenko's BDI / CPack family): zeros, repeated words, narrow
//!   values, and base+delta over 8-byte words, no hash table;
//! - [`samefilled::SameFilled`] — zswap-style same-filled pages (one
//!   repeated word) as a first-class codec.
//!
//! The [`codec`] module layers identity and selection on top: a stable
//! [`CodecId`] per codec (persisted in store entries and spill extent
//! headers so decode always uses the codec that sealed the bytes), a
//! [`CodecPolicy`] (`lzrw1-only` / `bdi-only` / `adaptive`), the sampled
//! [`probe_bdi`] classifier, and [`CodecSet`] — the per-thread bundle the
//! store's put path selects from.
//!
//! Every codec implements [`Compressor`] and obeys the same contract:
//! `compress` never produces more than [`Compressor::max_compressed_len`]
//! bytes (falling back to a stored block when data expands), and
//! `decompress` validates untrusted input, returning [`DecompressError`]
//! rather than panicking.
//!
//! The [`threshold`] module implements the paper's 4:3 keep-compressed
//! policy (§5.2): pages that compress to more than 3/4 of their original
//! size are not worth keeping in compressed form.

#![warn(missing_docs)]

pub mod bdi;
pub mod codec;
pub mod lzrw1;
pub mod lzss;
pub mod null;
pub mod rle;
pub mod samefilled;
pub mod threshold;

pub use bdi::Bdi;
pub use codec::{codec_for, probe_bdi, Codec, CodecId, CodecPolicy, CodecSet, Selection};
pub use lzrw1::Lzrw1;
pub use lzss::Lzss;
pub use null::Null;
pub use rle::Rle;
pub use samefilled::{expand_same_filled, same_filled_pattern, SameFilled};
pub use threshold::{CompressDecision, ThresholdPolicy};

use std::fmt;

/// Error returned when decompressing malformed or truncated input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// The input ended before the expected output was produced.
    Truncated,
    /// A back-reference pointed before the start of the output.
    BadOffset {
        /// The offending offset.
        offset: usize,
        /// Output position at which it was found.
        at: usize,
    },
    /// The method byte does not name a known encoding.
    BadMethod(u8),
    /// Input bytes remained after the expected output was produced.
    TrailingGarbage,
    /// Producing the next item would exceed the expected output length.
    OutputOverrun,
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed input truncated"),
            DecompressError::BadOffset { offset, at } => {
                write!(f, "back-reference offset {offset} invalid at output {at}")
            }
            DecompressError::BadMethod(m) => write!(f, "unknown method byte {m:#x}"),
            DecompressError::TrailingGarbage => write!(f, "trailing bytes after output complete"),
            DecompressError::OutputOverrun => write!(f, "item would overrun expected output"),
        }
    }
}

impl std::error::Error for DecompressError {}

/// Relative cost of running a codec, normalized so that LZRW1 is 1.0.
///
/// The simulator charges `page_bytes / (machine compress bandwidth *
/// compress_scale)` of virtual time per compression; larger scales are
/// faster. This keeps one machine parameter (the LZRW1 bandwidth measured
/// on the target CPU) while letting alternative codecs plug in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostProfile {
    /// Compression speed relative to LZRW1 (1.0 = same).
    pub compress_scale: f64,
    /// Decompression speed relative to LZRW1 *decompression* (1.0 = same).
    pub decompress_scale: f64,
}

/// A page compressor.
///
/// Codecs are `&mut self` because fast LZ coders keep scratch state (the
/// LZRW1 hash table) between calls; reusing it avoids a per-page allocation,
/// exactly as the Sprite kernel kept one static table (§4.4).
pub trait Compressor {
    /// Short stable name for reports ("lzrw1", "rle", ...).
    fn name(&self) -> &'static str;

    /// Worst-case compressed size for `n` input bytes.
    ///
    /// All codecs here store incompressible data raw behind a 1-byte method
    /// tag, so this is `n + 1` unless a codec documents otherwise.
    fn max_compressed_len(&self, n: usize) -> usize {
        n + 1
    }

    /// Compress `src`, replacing the contents of `dst`.
    ///
    /// Returns the compressed length (`dst.len()`); guaranteed to be at most
    /// [`Compressor::max_compressed_len`]`(src.len())`.
    fn compress(&mut self, src: &[u8], dst: &mut Vec<u8>) -> usize;

    /// Decompress `src` into `dst` (replacing its contents), where the
    /// caller knows the original length `expected_len` — the compression
    /// cache always records it in the page header.
    fn decompress(
        &mut self,
        src: &[u8],
        dst: &mut Vec<u8>,
        expected_len: usize,
    ) -> Result<(), DecompressError>;

    /// Relative speed of this codec (see [`CostProfile`]).
    fn cost_profile(&self) -> CostProfile;
}

/// Convenience: compress and report the fraction `compressed / original`
/// (lower is better; 0.25 is the paper's "4:1").
pub fn compression_fraction<C: Compressor + ?Sized>(c: &mut C, src: &[u8]) -> f64 {
    if src.is_empty() {
        return 1.0;
    }
    let mut buf = Vec::new();
    let n = c.compress(src, &mut buf);
    n as f64 / src.len() as f64
}

/// Method tag for a stored (uncompressed) block. Shared by all codecs so
/// that a stored block can be recovered by any of them.
pub(crate) const METHOD_STORED: u8 = 0;

/// Encode `src` as a stored block into `dst`.
pub(crate) fn store_raw(src: &[u8], dst: &mut Vec<u8>) -> usize {
    dst.clear();
    dst.reserve(src.len() + 1);
    dst.push(METHOD_STORED);
    dst.extend_from_slice(src);
    dst.len()
}

/// Decode a stored block (after the method byte has been checked).
pub(crate) fn load_raw(
    body: &[u8],
    dst: &mut Vec<u8>,
    expected_len: usize,
) -> Result<(), DecompressError> {
    if body.len() < expected_len {
        return Err(DecompressError::Truncated);
    }
    if body.len() > expected_len {
        return Err(DecompressError::TrailingGarbage);
    }
    dst.clear();
    dst.extend_from_slice(body);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All codecs, boxed, for cross-codec contract tests.
    fn all_codecs() -> Vec<Box<dyn Compressor>> {
        vec![
            Box::new(Lzrw1::new()),
            Box::new(Lzrw1::with_table_bytes(4096)),
            Box::new(Lzss::new()),
            Box::new(Rle::new()),
            Box::new(Null::new()),
            Box::new(Bdi::new()),
            Box::new(SameFilled::new()),
        ]
    }

    fn sample_inputs() -> Vec<Vec<u8>> {
        let mut inputs = vec![
            vec![],
            vec![0u8],
            vec![7u8; 4096],
            (0..=255u8).cycle().take(4096).collect::<Vec<u8>>(),
            b"the quick brown fox jumps over the lazy dog ".repeat(100),
        ];
        // Pseudo-random page: effectively incompressible.
        let mut rng = cc_util::SplitMix64::new(99);
        inputs.push((0..4096).map(|_| rng.next_u64() as u8).collect());
        inputs
    }

    #[test]
    fn roundtrip_all_codecs_all_inputs() {
        for codec in all_codecs().iter_mut() {
            for input in sample_inputs() {
                let mut compressed = Vec::new();
                let n = codec.compress(&input, &mut compressed);
                assert_eq!(n, compressed.len(), "{}", codec.name());
                assert!(
                    n <= codec.max_compressed_len(input.len()),
                    "{} exceeded max_compressed_len on {} bytes",
                    codec.name(),
                    input.len()
                );
                let mut out = Vec::new();
                codec
                    .decompress(&compressed, &mut out, input.len())
                    .unwrap_or_else(|e| panic!("{} failed: {e}", codec.name()));
                assert_eq!(out, input, "{} roundtrip mismatch", codec.name());
            }
        }
    }

    #[test]
    fn wrong_expected_len_is_an_error_not_a_panic() {
        for codec in all_codecs().iter_mut() {
            let input = b"abcabcabcabc".to_vec();
            let mut compressed = Vec::new();
            codec.compress(&input, &mut compressed);
            let mut out = Vec::new();
            // Asking for more output than exists must error.
            assert!(
                codec
                    .decompress(&compressed, &mut out, input.len() + 100)
                    .is_err(),
                "{} accepted over-long expected_len",
                codec.name()
            );
        }
    }

    #[test]
    fn corrupt_method_byte_rejected() {
        for codec in all_codecs().iter_mut() {
            let mut out = Vec::new();
            let err = codec.decompress(&[0xEE, 1, 2, 3], &mut out, 3);
            assert!(err.is_err(), "{}", codec.name());
        }
    }

    #[test]
    fn compression_fraction_bounds() {
        let mut lz = Lzrw1::new();
        let zeros = vec![0u8; 4096];
        let frac = compression_fraction(&mut lz, &zeros);
        assert!(frac < 0.13, "zero page should compress hard, got {frac}");
        let mut rng = cc_util::SplitMix64::new(5);
        let random: Vec<u8> = (0..4096).map(|_| rng.next_u64() as u8).collect();
        let frac = compression_fraction(&mut lz, &random);
        assert!(frac > 0.9, "random page should not compress, got {frac}");
        assert!(frac <= 1.0 + 1.0 / 4096.0);
    }
}
