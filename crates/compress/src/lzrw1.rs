//! LZRW1 — Ross Williams's "extremely fast Ziv-Lempel" coder (DCC 1991),
//! reimplemented from the published algorithm description.
//!
//! LZRW1 is a byte-oriented LZ77 variant tuned for speed over ratio:
//!
//! - a single-probe hash table maps the next three input bytes to the most
//!   recent position where that trigram was seen;
//! - matches are 3..=18 bytes at offsets 1..=4095;
//! - items are emitted in groups of 16 behind a 16-bit control word
//!   (bit set ⇒ copy item, clear ⇒ literal);
//! - a copy item is two bytes: the high nibble of the first byte holds the
//!   top 4 offset bits, the low nibble holds `length - 3`; the second byte
//!   holds the low 8 offset bits;
//! - if the "compressed" output would be no smaller than the input, the
//!   block is emitted stored (the original uses a flag word; we use a
//!   method byte shared by all codecs in this crate).
//!
//! The hash table size is configurable. Williams used 4096 entries; the
//! paper's Sprite kernel used a 16 KB table (§4.4: "This hash table can be
//! relatively large (e.g., on the order of 1 Mbyte), which improves
//! compression at the cost of memory, or be relatively small. In the system
//! measured for this paper, the hash table is 16 Kbytes."). Modeling entries
//! as 4-byte pointers, 16 KB ⇒ 4096 entries, which is the default here.

use crate::{load_raw, store_raw, Compressor, CostProfile, DecompressError, METHOD_STORED};

/// Method byte identifying an LZRW1-encoded block.
const METHOD_LZRW1: u8 = 1;

/// Minimum match length.
const MIN_MATCH: usize = 3;
/// Maximum match length (`MIN_MATCH + 15`, one nibble of length).
const MAX_MATCH: usize = 18;
/// Maximum back-reference distance (12 bits of offset).
const MAX_OFFSET: usize = 4095;
/// Items per control word.
const GROUP: usize = 16;

/// The LZRW1 codec. Holds its hash table across calls, mirroring the
/// kernel's one static buffer.
///
/// # Examples
///
/// ```
/// use cc_compress::{Compressor, Lzrw1};
///
/// let mut lz = Lzrw1::new();
/// let page = b"hello hello hello hello hello hello".to_vec();
/// let mut packed = Vec::new();
/// let n = lz.compress(&page, &mut packed);
/// assert!(n < page.len());
/// let mut out = Vec::new();
/// lz.decompress(&packed, &mut out, page.len()).unwrap();
/// assert_eq!(out, page);
/// ```
#[derive(Debug, Clone)]
pub struct Lzrw1 {
    /// Hash table: for each trigram hash, the packed
    /// `(generation << 32) | position` of its most recent occurrence.
    /// Stamping entries with the current generation makes stale slots
    /// self-invalidating, so the table never needs clearing between
    /// blocks — that memset used to cost more than compressing a page.
    table: Vec<u64>,
    /// `table.len() - 1`; table length is always a power of two.
    mask: usize,
    /// Current compression generation (bumped per `compress` call).
    generation: u32,
}

impl Default for Lzrw1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Lzrw1 {
    /// Default table: 4096 entries = 16 KB of 4-byte pointers, the size
    /// measured in the paper.
    pub fn new() -> Self {
        Self::with_entries(4096)
    }

    /// Construct with a table of `bytes / 4` entries (rounded down to a
    /// power of two, minimum 256 entries).
    pub fn with_table_bytes(bytes: usize) -> Self {
        let entries = (bytes / 4).max(256);
        let entries = 1usize << (usize::BITS - 1 - entries.leading_zeros());
        Self::with_entries(entries)
    }

    /// Construct with an explicit number of hash-table entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or is less than 256.
    pub fn with_entries(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two() && entries >= 256,
            "hash table entries must be a power of two >= 256"
        );
        Lzrw1 {
            // Generation 0 marks never-written slots; the first compress
            // call runs as generation 1.
            table: vec![0; entries],
            mask: entries - 1,
            generation: 0,
        }
    }

    /// The modeled memory footprint of the hash table in bytes
    /// (4 bytes per entry, as on the 32-bit DECstation — the host-side
    /// generation stamps are an implementation detail, not part of the
    /// modeled 1993 kernel).
    pub fn table_bytes(&self) -> usize {
        self.table.len() * 4
    }

    /// Williams's multiplicative trigram hash.
    #[inline]
    fn hash(&self, b0: u8, b1: u8, b2: u8) -> usize {
        let k = ((((b0 as u32) << 4) ^ (b1 as u32)) << 4) ^ (b2 as u32);
        ((40543u32.wrapping_mul(k)) >> 4) as usize & self.mask
    }
}

/// Extend a verified `MIN_MATCH`-byte match at `src[cand]` / `src[i]` up
/// to `limit` bytes, comparing a word at a time where possible.
#[inline]
fn extend_match(src: &[u8], cand: usize, i: usize, limit: usize) -> usize {
    let mut len = MIN_MATCH;
    while len + 8 <= limit {
        let a = u64::from_le_bytes(src[cand + len..cand + len + 8].try_into().unwrap());
        let b = u64::from_le_bytes(src[i + len..i + len + 8].try_into().unwrap());
        let diff = a ^ b;
        if diff != 0 {
            return len + (diff.trailing_zeros() >> 3) as usize;
        }
        len += 8;
    }
    while len < limit && src[cand + len] == src[i + len] {
        len += 1;
    }
    len
}

impl Compressor for Lzrw1 {
    fn name(&self) -> &'static str {
        "lzrw1"
    }

    fn compress(&mut self, src: &[u8], dst: &mut Vec<u8>) -> usize {
        dst.clear();
        if src.is_empty() {
            dst.push(METHOD_STORED);
            return dst.len();
        }
        // Bump the block generation instead of clearing the table:
        // entries stamped with an older generation are treated as empty,
        // so compressed pages stay independently decompressible without
        // paying a table memset per 4 KB block.
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // u32 wraparound (once per 4G blocks): flush for real.
            self.table.iter_mut().for_each(|e| *e = 0);
            self.generation = 1;
        }
        let gen_tag = (self.generation as u64) << 32;

        let n = src.len();
        debug_assert!(n < (1 << 32), "block too large for packed table entries");
        // Worst case is all-literal output: 1 method byte + n literals +
        // 2 control bytes per 16 items. Reserving it up front keeps the
        // emit loop free of reallocation.
        dst.reserve(n + n / 8 + 4);
        dst.push(METHOD_LZRW1);
        let mut i = 0usize;
        // Position of the current group's control word within dst.
        let mut ctrl_pos = dst.len();
        dst.extend_from_slice(&[0, 0]);
        let mut ctrl: u16 = 0;
        let mut items_in_group = 0usize;

        while i < n {
            if items_in_group == GROUP {
                dst[ctrl_pos] = (ctrl & 0xFF) as u8;
                dst[ctrl_pos + 1] = (ctrl >> 8) as u8;
                ctrl_pos = dst.len();
                dst.extend_from_slice(&[0, 0]);
                ctrl = 0;
                items_in_group = 0;
            }

            let mut emitted_copy = false;
            if n - i >= MIN_MATCH {
                let h = self.hash(src[i], src[i + 1], src[i + 2]);
                let slot = self.table[h];
                self.table[h] = gen_tag | i as u64;
                // A slot from an older block reads as a generation
                // mismatch; a slot from this block always holds a
                // position strictly below `i`.
                if slot >> 32 == self.generation as u64 {
                    let cand = (slot & 0xFFFF_FFFF) as usize;
                    let offset = i - cand;
                    // Check and extend the match.
                    if offset <= MAX_OFFSET
                        && src[cand] == src[i]
                        && src[cand + 1] == src[i + 1]
                        && src[cand + 2] == src[i + 2]
                    {
                        let limit = MAX_MATCH.min(n - i);
                        let len = extend_match(src, cand, i, limit);
                        ctrl |= 1 << items_in_group;
                        dst.push((((offset >> 8) as u8) << 4) | ((len - MIN_MATCH) as u8));
                        dst.push((offset & 0xFF) as u8);
                        i += len;
                        emitted_copy = true;
                    }
                }
            }
            if !emitted_copy {
                dst.push(src[i]);
                i += 1;
            }
            items_in_group += 1;
        }
        // Flush the final (possibly partial) control word.
        dst[ctrl_pos] = (ctrl & 0xFF) as u8;
        dst[ctrl_pos + 1] = (ctrl >> 8) as u8;

        if dst.len() > src.len() {
            // Expansion: fall back to a stored block (original LZRW1 sets a
            // copy flag and memcpys).
            return store_raw(src, dst);
        }
        dst.len()
    }

    fn decompress(
        &mut self,
        src: &[u8],
        dst: &mut Vec<u8>,
        expected_len: usize,
    ) -> Result<(), DecompressError> {
        let (&method, body) = src.split_first().ok_or(DecompressError::Truncated)?;
        match method {
            METHOD_STORED => return load_raw(body, dst, expected_len),
            METHOD_LZRW1 => {}
            other => return Err(DecompressError::BadMethod(other)),
        }
        dst.clear();
        dst.reserve(expected_len);
        let mut pos = 0usize;
        while dst.len() < expected_len {
            if pos + 2 > body.len() {
                return Err(DecompressError::Truncated);
            }
            let ctrl = u16::from_le_bytes([body[pos], body[pos + 1]]);
            pos += 2;
            let mut bit = 0;
            while bit < GROUP && dst.len() < expected_len {
                if ctrl & (1 << bit) != 0 {
                    if pos + 2 > body.len() {
                        return Err(DecompressError::Truncated);
                    }
                    let b0 = body[pos] as usize;
                    let b1 = body[pos + 1] as usize;
                    pos += 2;
                    let offset = ((b0 & 0xF0) << 4) | b1;
                    let len = (b0 & 0x0F) + MIN_MATCH;
                    let at = dst.len();
                    if offset == 0 || offset > at {
                        return Err(DecompressError::BadOffset { offset, at });
                    }
                    if at + len > expected_len {
                        return Err(DecompressError::OutputOverrun);
                    }
                    if offset >= len {
                        // Disjoint source and destination: one memcpy.
                        dst.extend_from_within(at - offset..at - offset + len);
                    } else if offset == 1 {
                        // RLE-like run of one byte: a fill, not a loop.
                        let b = dst[at - 1];
                        dst.resize(at + len, b);
                    } else {
                        // Genuinely overlapping short copy (len <= 18):
                        // byte-at-a-time is both correct and cheap here.
                        for k in 0..len {
                            let b = dst[at - offset + k];
                            dst.push(b);
                        }
                    }
                    bit += 1;
                } else {
                    // Batch the whole run of literal items implied by the
                    // consecutive clear control bits into one copy.
                    let run = ((ctrl >> bit).trailing_zeros() as usize)
                        .min(GROUP - bit)
                        .min(expected_len - dst.len());
                    debug_assert!(run >= 1);
                    if pos + run > body.len() {
                        return Err(DecompressError::Truncated);
                    }
                    dst.extend_from_slice(&body[pos..pos + run]);
                    pos += run;
                    bit += run;
                }
            }
        }
        if pos != body.len() {
            return Err(DecompressError::TrailingGarbage);
        }
        Ok(())
    }

    fn cost_profile(&self) -> CostProfile {
        CostProfile {
            compress_scale: 1.0,
            decompress_scale: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_util::SplitMix64;

    fn roundtrip(lz: &mut Lzrw1, input: &[u8]) -> usize {
        let mut packed = Vec::new();
        let n = lz.compress(input, &mut packed);
        let mut out = Vec::new();
        lz.decompress(&packed, &mut out, input.len())
            .expect("decompress");
        assert_eq!(out, input);
        n
    }

    #[test]
    fn empty_input() {
        let mut lz = Lzrw1::new();
        assert_eq!(roundtrip(&mut lz, &[]), 1);
    }

    #[test]
    fn zero_page_compresses_extremely_well() {
        let mut lz = Lzrw1::new();
        let n = roundtrip(&mut lz, &[0u8; 4096]);
        // 4096 zeros: 1 literal + 228 copies of <=18 bytes + 15 control
        // words = 488 bytes, ~12% of the page.
        assert!(n <= 492, "zero page compressed to {n}");
    }

    #[test]
    fn text_compresses_better_than_half() {
        let mut lz = Lzrw1::new();
        let text = b"compression cache compression cache on-line compression ".repeat(70);
        let n = roundtrip(&mut lz, &text);
        assert!(n * 2 < text.len(), "{n} vs {}", text.len());
    }

    #[test]
    fn random_page_stores_raw() {
        let mut lz = Lzrw1::new();
        let mut rng = SplitMix64::new(1);
        let page: Vec<u8> = (0..4096).map(|_| rng.next_u64() as u8).collect();
        let mut packed = Vec::new();
        let n = lz.compress(&page, &mut packed);
        assert_eq!(n, 4097, "random page should fall back to stored");
        assert_eq!(packed[0], METHOD_STORED);
    }

    #[test]
    fn run_uses_overlapping_copies() {
        let mut lz = Lzrw1::new();
        // "aaaa..." forces offset-1 overlapping copies.
        let n = roundtrip(&mut lz, &[b'a'; 100]);
        assert!(n < 20, "run of 100 compressed to {n}");
    }

    #[test]
    fn offsets_beyond_window_are_not_used() {
        // Two identical 64-byte blocks separated by > 4095 incompressible
        // bytes: the second block cannot reference the first, but the codec
        // must still roundtrip.
        let mut lz = Lzrw1::new();
        let mut rng = SplitMix64::new(2);
        let block: Vec<u8> = (0..64).map(|i| (i * 7) as u8).collect();
        let mut input = block.clone();
        input.extend((0..5000).map(|_| rng.next_u64() as u8));
        input.extend_from_slice(&block);
        roundtrip(&mut lz, &input);
    }

    #[test]
    fn max_match_length_boundary() {
        let mut lz = Lzrw1::new();
        // A run exactly MAX_MATCH + MIN_MATCH long exercises the length cap.
        for len in [
            MIN_MATCH,
            MAX_MATCH - 1,
            MAX_MATCH,
            MAX_MATCH + 1,
            2 * MAX_MATCH,
            2 * MAX_MATCH + 1,
        ] {
            let input: Vec<u8> = std::iter::repeat_n(b'z', len + 1).collect();
            roundtrip(&mut lz, &input);
        }
    }

    #[test]
    fn all_table_sizes_roundtrip() {
        let text = b"the boy stood on the burning deck ".repeat(200);
        for entries in [256, 1024, 4096, 65536] {
            let mut lz = Lzrw1::with_entries(entries);
            roundtrip(&mut lz, &text);
        }
    }

    #[test]
    fn bigger_table_never_much_worse() {
        // A larger hash table means fewer trigram collisions, which should
        // not systematically hurt ratio on text.
        let text: Vec<u8> = {
            let mut rng = SplitMix64::new(7);
            let words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
            let mut t = Vec::new();
            while t.len() < 16384 {
                t.extend_from_slice(words[rng.gen_index(words.len())].as_bytes());
                t.push(b' ');
            }
            t
        };
        let mut small = Lzrw1::with_entries(256);
        let mut large = Lzrw1::with_entries(65536);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let ns = small.compress(&text, &mut a);
        let nl = large.compress(&text, &mut b);
        assert!(
            nl as f64 <= ns as f64 * 1.05,
            "large table ratio {nl} much worse than small {ns}"
        );
    }

    #[test]
    fn with_table_bytes_rounds_to_power_of_two() {
        assert_eq!(Lzrw1::with_table_bytes(16 * 1024).table_bytes(), 16 * 1024);
        assert_eq!(Lzrw1::with_table_bytes(5000).table_bytes(), 4096);
        assert_eq!(Lzrw1::with_table_bytes(1).table_bytes(), 1024);
    }

    #[test]
    fn truncated_inputs_error() {
        let mut lz = Lzrw1::new();
        let text = b"abcabcabcabcabcabc".to_vec();
        let mut packed = Vec::new();
        lz.compress(&text, &mut packed);
        for cut in 0..packed.len() {
            let mut out = Vec::new();
            let r = lz.decompress(&packed[..cut], &mut out, text.len());
            assert!(r.is_err(), "accepted truncation at {cut}");
        }
    }

    #[test]
    fn bad_offset_detected() {
        // Hand-craft: method byte, control word with bit0 set (copy), copy
        // item referencing offset 5 at output position 0.
        let packed = [METHOD_LZRW1, 0x01, 0x00, 0x00, 0x05];
        let mut out = Vec::new();
        let err = Lzrw1::new().decompress(&packed, &mut out, 10).unwrap_err();
        assert!(matches!(err, DecompressError::BadOffset { .. }), "{err:?}");
    }

    #[test]
    fn deterministic_output() {
        let mut a = Lzrw1::new();
        let mut b = Lzrw1::new();
        let text = b"determinism matters for simulation ".repeat(50);
        let mut pa = Vec::new();
        let mut pb = Vec::new();
        a.compress(&text, &mut pa);
        // Interleave an unrelated compression to confirm the table reset.
        let mut scratch = Vec::new();
        b.compress(&[1, 2, 3, 4, 5, 6, 7, 8], &mut scratch);
        b.compress(&text, &mut pb);
        assert_eq!(pa, pb);
    }
}
