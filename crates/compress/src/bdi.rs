//! Base+delta-immediate (BDI) word-pattern codec.
//!
//! Pekhimenko's BDI observation (and CPack's word classes) is that many
//! real pages are *regular* at word granularity even when they are not
//! byte-repetitive: all-zero pages, one repeated word, narrow values
//! (small integers stored in 8-byte slots), and arrays whose 8-byte words
//! cluster around a common base (pointers into one heap region, ascending
//! indices). Such pages compress in **one pass with no hash table** — the
//! codec reads each word once, subtracts a base, and emits a truncated
//! two's-complement delta — which makes it several times faster than an
//! LZ coder on the pages it fits.
//!
//! Wire format (after the 1-byte method tag [`METHOD_BDI`]):
//!
//! | scheme | layout |
//! |--------|--------|
//! | `0` zero     | `orig_len: u32 LE` |
//! | `1` repeated | `orig_len: u32 LE`, `word: u64 LE` |
//! | `2` delta    | `width: u8 (1/2/4)`, `base: u64 LE`, `n/8` deltas of `width` bytes (LE, sign-extended on decode), `n%8` raw tail bytes |
//!
//! Schemes 0 and 1 record the original length so a wrong `expected_len`
//! at decode is an error, never a silently different-sized page. Incompressible
//! input falls back to the shared stored block (method `0`), so the worst
//! case is `n + 1` bytes like every other codec here.

use crate::{load_raw, store_raw, Compressor, CostProfile, DecompressError, METHOD_STORED};

/// Method tag for a BDI-coded block.
pub(crate) const METHOD_BDI: u8 = 5;

const SCHEME_ZERO: u8 = 0;
const SCHEME_REP: u8 = 1;
const SCHEME_DELTA: u8 = 2;

/// Single-pass base+delta-immediate codec over 8-byte little-endian words.
#[derive(Debug, Clone, Default)]
pub struct Bdi;

impl Bdi {
    /// Create the codec (stateless — no table to allocate).
    pub fn new() -> Self {
        Bdi
    }
}

/// Smallest signed width (1, 2, 4, or 8 bytes) that holds `v` exactly.
/// Shared with the codec-selection probe, which predicts delta widths
/// from a sample of words.
#[inline]
pub(crate) fn sig_width(v: i64) -> usize {
    if v >= i8::MIN as i64 && v <= i8::MAX as i64 {
        1
    } else if v >= i16::MIN as i64 && v <= i16::MAX as i64 {
        2
    } else if v >= i32::MIN as i64 && v <= i32::MAX as i64 {
        4
    } else {
        8
    }
}

/// Encoded size of the delta scheme for `nwords` words at `width` plus a
/// raw `tail`-byte remainder: method + scheme + width byte + 8-byte base.
#[inline]
fn delta_cost(width: usize, nwords: usize, tail: usize) -> usize {
    2 + 1 + 8 + width * nwords + tail
}

#[inline]
fn word_at(src: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(src[i * 8..i * 8 + 8].try_into().expect("8-byte word"))
}

impl Compressor for Bdi {
    fn name(&self) -> &'static str {
        "bdi"
    }

    fn compress(&mut self, src: &[u8], dst: &mut Vec<u8>) -> usize {
        let n = src.len();
        let nwords = n / 8;
        let tail = &src[nwords * 8..];

        // One pass: classify. All-zero and repeated-word fall out of the
        // same scan that sizes the two delta candidates (base = first
        // word, base = 0 for narrow values).
        let mut all_zero = tail.iter().all(|&b| b == 0);
        let (mut rep, mut wbase, mut wzero) = (true, 1usize, 1usize);
        let base = if nwords > 0 { word_at(src, 0) } else { 0 };
        for i in 0..nwords {
            let w = word_at(src, i);
            all_zero &= w == 0;
            rep &= w == base;
            wbase = wbase.max(sig_width(w.wrapping_sub(base) as i64));
            wzero = wzero.max(sig_width(w as i64));
        }
        // Repeated-word also requires the tail to continue the pattern.
        rep = rep && nwords > 0 && *tail == base.to_le_bytes()[..tail.len()];

        // Pick the cheapest applicable scheme; stored (n + 1) wins ties.
        let mut best_cost = n + 1;
        let mut best: Option<(u8, usize, u64)> = None; // (scheme, width, base)
        let dwidth = wbase.min(wzero);
        let dbase = if wbase <= wzero { base } else { 0 };
        if dwidth < 8 && nwords > 0 && delta_cost(dwidth, nwords, tail.len()) < best_cost {
            best_cost = delta_cost(dwidth, nwords, tail.len());
            best = Some((SCHEME_DELTA, dwidth, dbase));
        }
        if rep && 2 + 4 + 8 < best_cost {
            best_cost = 2 + 4 + 8;
            best = Some((SCHEME_REP, 0, base));
        }
        if all_zero && 2 + 4 < best_cost {
            best = Some((SCHEME_ZERO, 0, 0));
        }

        let Some((scheme, width, base)) = best else {
            return store_raw(src, dst);
        };
        dst.clear();
        dst.push(METHOD_BDI);
        dst.push(scheme);
        match scheme {
            SCHEME_ZERO => dst.extend_from_slice(&(n as u32).to_le_bytes()),
            SCHEME_REP => {
                dst.extend_from_slice(&(n as u32).to_le_bytes());
                dst.extend_from_slice(&base.to_le_bytes());
            }
            _ => {
                dst.push(width as u8);
                dst.extend_from_slice(&base.to_le_bytes());
                for i in 0..nwords {
                    let d = word_at(src, i).wrapping_sub(base) as i64;
                    dst.extend_from_slice(&d.to_le_bytes()[..width]);
                }
                dst.extend_from_slice(tail);
            }
        }
        debug_assert!(dst.len() <= n + 1, "bdi exceeded stored fallback");
        dst.len()
    }

    fn decompress(
        &mut self,
        src: &[u8],
        dst: &mut Vec<u8>,
        expected_len: usize,
    ) -> Result<(), DecompressError> {
        let (&method, body) = src.split_first().ok_or(DecompressError::Truncated)?;
        if method == METHOD_STORED {
            return load_raw(body, dst, expected_len);
        }
        if method != METHOD_BDI {
            return Err(DecompressError::BadMethod(method));
        }
        let (&scheme, body) = body.split_first().ok_or(DecompressError::Truncated)?;
        match scheme {
            SCHEME_ZERO | SCHEME_REP => {
                let want = if scheme == SCHEME_ZERO { 4 } else { 12 };
                if body.len() < want {
                    return Err(DecompressError::Truncated);
                }
                if body.len() > want {
                    return Err(DecompressError::TrailingGarbage);
                }
                let recorded =
                    u32::from_le_bytes(body[0..4].try_into().expect("4-byte len")) as usize;
                if recorded > expected_len {
                    return Err(DecompressError::OutputOverrun);
                }
                if recorded < expected_len {
                    return Err(DecompressError::Truncated);
                }
                dst.clear();
                if scheme == SCHEME_ZERO {
                    dst.resize(expected_len, 0);
                } else {
                    let word = body[4..12].try_into().expect("8-byte word");
                    let word = u64::from_le_bytes(word).to_le_bytes();
                    dst.reserve(expected_len);
                    while dst.len() + 8 <= expected_len {
                        dst.extend_from_slice(&word);
                    }
                    dst.extend_from_slice(&word[..expected_len - dst.len()]);
                }
                Ok(())
            }
            SCHEME_DELTA => {
                let (&width, body) = body.split_first().ok_or(DecompressError::Truncated)?;
                let width = width as usize;
                if !matches!(width, 1 | 2 | 4) {
                    return Err(DecompressError::BadMethod(width as u8));
                }
                if body.len() < 8 {
                    return Err(DecompressError::Truncated);
                }
                let base = u64::from_le_bytes(body[..8].try_into().expect("8-byte base"));
                let body = &body[8..];
                let nwords = expected_len / 8;
                let tail = expected_len % 8;
                let want = width * nwords + tail;
                if body.len() < want {
                    return Err(DecompressError::Truncated);
                }
                if body.len() > want {
                    return Err(DecompressError::TrailingGarbage);
                }
                dst.clear();
                dst.reserve(expected_len);
                for i in 0..nwords {
                    let raw = &body[i * width..(i + 1) * width];
                    // Sign-extend the truncated two's-complement delta.
                    let mut d = [if raw[width - 1] & 0x80 != 0 { 0xFF } else { 0 }; 8];
                    d[..width].copy_from_slice(raw);
                    let w = base.wrapping_add(i64::from_le_bytes(d) as u64);
                    dst.extend_from_slice(&w.to_le_bytes());
                }
                dst.extend_from_slice(&body[width * nwords..]);
                Ok(())
            }
            other => Err(DecompressError::BadMethod(other)),
        }
    }

    fn cost_profile(&self) -> CostProfile {
        // One linear pass, no hash table: several times an LZRW1 pass on
        // pages it fits; decode is a widening copy.
        CostProfile {
            compress_scale: 6.0,
            decompress_scale: 3.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &[u8]) -> usize {
        let mut c = Bdi::new();
        let mut packed = Vec::new();
        let n = c.compress(input, &mut packed);
        assert_eq!(n, packed.len());
        assert!(n <= c.max_compressed_len(input.len()));
        let mut out = Vec::new();
        c.decompress(&packed, &mut out, input.len()).unwrap();
        assert_eq!(out, input);
        n
    }

    #[test]
    fn zero_page_is_six_bytes() {
        assert_eq!(roundtrip(&[0u8; 4096]), 6);
        assert_eq!(roundtrip(&[0u8; 1024]), 6);
        assert_eq!(roundtrip(&[0u8; 9]), 6);
    }

    #[test]
    fn repeated_word_is_fourteen_bytes() {
        let page: Vec<u8> = 0xDEAD_BEEF_0BAD_F00Du64
            .to_le_bytes()
            .iter()
            .copied()
            .cycle()
            .take(4096)
            .collect();
        assert_eq!(roundtrip(&page), 14);
        // Ragged tail continuing the pattern still qualifies.
        assert_eq!(roundtrip(&page[..4093]), 14);
    }

    #[test]
    fn narrow_values_use_base_zero() {
        // u16 counters in u64 slots: delta width 2 off base 0.
        let mut page = vec![0u8; 4096];
        for (i, w) in page.chunks_exact_mut(8).enumerate() {
            w[..2].copy_from_slice(&(i as u16 ^ 0x1234).to_le_bytes());
        }
        let n = roundtrip(&page);
        assert_eq!(n, delta_cost(2, 512, 0));
    }

    #[test]
    fn clustered_pointers_use_first_word_base() {
        // 64-bit "pointers" within ±127 of the first: width 1.
        let base = 0x7FFF_AAAA_BBBB_0000u64;
        let mut page = vec![0u8; 4096];
        for (i, w) in page.chunks_exact_mut(8).enumerate() {
            let v = base.wrapping_add((i as u64 % 120).wrapping_sub(60));
            w.copy_from_slice(&v.to_le_bytes());
        }
        let n = roundtrip(&page);
        assert_eq!(n, delta_cost(1, 512, 0));
    }

    #[test]
    fn random_page_stores_raw() {
        let mut rng = cc_util::SplitMix64::new(7);
        let page: Vec<u8> = (0..4096).map(|_| rng.next_u64() as u8).collect();
        assert_eq!(roundtrip(&page), 4097);
    }

    #[test]
    fn boundary_sizes_roundtrip() {
        for n in [0usize, 1, 5, 7, 8, 9, 15, 16, 17, 4095, 4096, 4097] {
            roundtrip(&vec![0u8; n]);
            roundtrip(&vec![0xA5u8; n]);
            let ramp: Vec<u8> = (0..n).map(|i| (i / 8) as u8).collect();
            roundtrip(&ramp);
        }
    }

    #[test]
    fn wrong_expected_len_is_rejected_for_length_agnostic_schemes() {
        let mut c = Bdi::new();
        let mut packed = Vec::new();
        c.compress(&[0u8; 4096], &mut packed);
        let mut out = Vec::new();
        assert_eq!(
            c.decompress(&packed, &mut out, 4095),
            Err(DecompressError::OutputOverrun)
        );
        assert_eq!(
            c.decompress(&packed, &mut out, 4097),
            Err(DecompressError::Truncated)
        );
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        let mut c = Bdi::new();
        let mut out = Vec::new();
        assert!(c.decompress(&[], &mut out, 0).is_err());
        assert!(c.decompress(&[METHOD_BDI], &mut out, 8).is_err());
        // Bad scheme byte.
        assert!(c.decompress(&[METHOD_BDI, 9, 0, 0], &mut out, 8).is_err());
        // Delta with bad width.
        assert!(c
            .decompress(
                &[METHOD_BDI, SCHEME_DELTA, 3, 0, 0, 0, 0, 0, 0, 0, 0],
                &mut out,
                8
            )
            .is_err());
        // Truncated delta body.
        let mut packed = Vec::new();
        let mut page = vec![0u8; 64];
        page[0] = 1;
        c.compress(&page, &mut packed);
        for cut in 0..packed.len() {
            assert!(
                c.decompress(&packed[..cut], &mut out, page.len()).is_err(),
                "cut at {cut} accepted"
            );
        }
    }
}
