//! PackBits-style run-length codec.
//!
//! Far weaker than LZRW1 on text, but nearly free to run; it exists as the
//! low-effort point on the compression-speed-versus-ratio curve that §3 of
//! the paper analyzes, and it is very effective on zero-filled pages.

use crate::{load_raw, store_raw, Compressor, CostProfile, DecompressError, METHOD_STORED};

/// Method byte identifying an RLE-encoded block.
const METHOD_RLE: u8 = 2;

/// Maximum literal-run length per control byte.
const MAX_LITERAL: usize = 128;
/// Maximum repeat-run length per control byte.
const MAX_REPEAT: usize = 130;
/// Minimum repeat worth encoding (shorter runs ride in literal runs).
const MIN_REPEAT: usize = 3;

/// The run-length codec.
///
/// Encoding: control byte `c`; `c <= 127` ⇒ copy the next `c + 1` bytes
/// verbatim; `c >= 128` ⇒ repeat the following byte `c - 125` times
/// (3..=130). Falls back to a stored block on expansion.
///
/// # Examples
///
/// ```
/// use cc_compress::{Compressor, Rle};
///
/// let mut rle = Rle::new();
/// let mut packed = Vec::new();
/// let n = rle.compress(&[0u8; 4096], &mut packed);
/// assert!(n < 80);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Rle;

impl Rle {
    /// Create the codec (stateless).
    pub fn new() -> Self {
        Rle
    }
}

impl Compressor for Rle {
    fn name(&self) -> &'static str {
        "rle"
    }

    fn compress(&mut self, src: &[u8], dst: &mut Vec<u8>) -> usize {
        dst.clear();
        dst.push(METHOD_RLE);
        let n = src.len();
        let mut i = 0;
        let mut lit_start = 0;

        let flush_literals = |dst: &mut Vec<u8>, src: &[u8], from: usize, to: usize| {
            let mut s = from;
            while s < to {
                let chunk = (to - s).min(MAX_LITERAL);
                dst.push((chunk - 1) as u8);
                dst.extend_from_slice(&src[s..s + chunk]);
                s += chunk;
            }
        };

        while i < n {
            // Measure the run starting at i.
            let b = src[i];
            let mut run = 1;
            while i + run < n && src[i + run] == b && run < MAX_REPEAT {
                run += 1;
            }
            if run >= MIN_REPEAT {
                flush_literals(dst, src, lit_start, i);
                dst.push((128 + (run - MIN_REPEAT)) as u8);
                dst.push(b);
                i += run;
                lit_start = i;
            } else {
                i += run;
            }
        }
        flush_literals(dst, src, lit_start, n);

        if dst.len() > src.len() && !src.is_empty() {
            return store_raw(src, dst);
        }
        dst.len()
    }

    fn decompress(
        &mut self,
        src: &[u8],
        dst: &mut Vec<u8>,
        expected_len: usize,
    ) -> Result<(), DecompressError> {
        let (&method, body) = src.split_first().ok_or(DecompressError::Truncated)?;
        match method {
            METHOD_STORED => return load_raw(body, dst, expected_len),
            METHOD_RLE => {}
            other => return Err(DecompressError::BadMethod(other)),
        }
        dst.clear();
        dst.reserve(expected_len);
        let mut pos = 0;
        while dst.len() < expected_len {
            if pos >= body.len() {
                return Err(DecompressError::Truncated);
            }
            let c = body[pos] as usize;
            pos += 1;
            if c <= 127 {
                let count = c + 1;
                if pos + count > body.len() {
                    return Err(DecompressError::Truncated);
                }
                if dst.len() + count > expected_len {
                    return Err(DecompressError::OutputOverrun);
                }
                dst.extend_from_slice(&body[pos..pos + count]);
                pos += count;
            } else {
                let count = c - 128 + MIN_REPEAT;
                if pos >= body.len() {
                    return Err(DecompressError::Truncated);
                }
                if dst.len() + count > expected_len {
                    return Err(DecompressError::OutputOverrun);
                }
                let b = body[pos];
                pos += 1;
                dst.resize(dst.len() + count, b);
            }
        }
        if pos != body.len() {
            return Err(DecompressError::TrailingGarbage);
        }
        Ok(())
    }

    fn cost_profile(&self) -> CostProfile {
        // RLE is a single linear pass with no hashing: roughly 4x the speed
        // of LZRW1 in both directions.
        CostProfile {
            compress_scale: 4.0,
            decompress_scale: 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_util::SplitMix64;

    fn roundtrip(input: &[u8]) -> usize {
        let mut rle = Rle::new();
        let mut packed = Vec::new();
        let n = rle.compress(input, &mut packed);
        let mut out = Vec::new();
        rle.decompress(&packed, &mut out, input.len()).unwrap();
        assert_eq!(out, input);
        n
    }

    #[test]
    fn zero_page() {
        let n = roundtrip(&[0u8; 4096]);
        // ceil(4096 / 130) runs * 2 bytes + method = 64.
        assert!(n <= 65, "got {n}");
    }

    #[test]
    fn short_runs_ride_in_literals() {
        roundtrip(b"aabbccddee");
        roundtrip(b"aaabbbccc");
        roundtrip(b"a");
        roundtrip(b"");
    }

    #[test]
    fn exact_run_boundaries() {
        for len in [
            MIN_REPEAT - 1,
            MIN_REPEAT,
            MAX_REPEAT,
            MAX_REPEAT + 1,
            2 * MAX_REPEAT,
        ] {
            let input = vec![b'x'; len];
            roundtrip(&input);
        }
    }

    #[test]
    fn long_literal_spans_chunks() {
        // 300 distinct bytes forces multiple literal chunks.
        let input: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
        roundtrip(&input);
    }

    #[test]
    fn random_falls_back_to_stored() {
        let mut rng = SplitMix64::new(3);
        let input: Vec<u8> = (0..2048).map(|_| rng.next_u64() as u8).collect();
        let mut rle = Rle::new();
        let mut packed = Vec::new();
        let n = rle.compress(&input, &mut packed);
        assert_eq!(n, input.len() + 1);
        assert_eq!(packed[0], METHOD_STORED);
    }

    #[test]
    fn truncation_rejected() {
        let mut rle = Rle::new();
        let input = vec![9u8; 100];
        let mut packed = Vec::new();
        rle.compress(&input, &mut packed);
        for cut in 0..packed.len() {
            let mut out = Vec::new();
            assert!(rle.decompress(&packed[..cut], &mut out, 100).is_err());
        }
    }
}
