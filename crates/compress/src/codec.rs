//! The codec layer: stable codec ids, the [`Codec`] trait, per-page
//! adaptive selection, and the [`CodecSet`] used by the store's hot path.
//!
//! The store records *which* codec sealed each page — in the in-memory
//! entry and in the spill extent header — so decode always dispatches on
//! the recorded [`CodecId`], never on guesswork. Selection between codecs
//! is a policy ([`CodecPolicy`]): LZRW1-only (the paper's configuration),
//! BDI-only (the word-pattern fast path), or adaptive, which classifies
//! the page with a cheap sampled probe ([`probe_bdi`]) and falls back to
//! LZRW1 when the pattern codec would miss the keep-compressed threshold.

use crate::bdi::Bdi;
use crate::lzrw1::Lzrw1;
use crate::lzss::Lzss;
use crate::null::Null;
use crate::rle::Rle;
use crate::samefilled::SameFilled;
use crate::threshold::{CompressDecision, ThresholdPolicy};
use crate::{store_raw, Compressor, DecompressError};

/// Stable on-the-wire codec identifier, recorded per entry and per spill
/// extent. Values match each codec's leading method byte, so the id and
/// the first byte of a sealed block always agree.
///
/// **Never renumber these** — spilled extents outlive the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CodecId {
    /// Stored block (threshold reject / incompressible).
    Raw = 0,
    /// LZRW1 (the paper's codec).
    Lzrw1 = 1,
    /// Run-length encoding.
    Rle = 2,
    /// LZSS comparator.
    Lzss = 3,
    /// Same-filled pattern word.
    SameFilled = 4,
    /// Base+delta-immediate word-pattern codec.
    Bdi = 5,
}

impl CodecId {
    /// Decode an id byte read from an entry or extent header.
    pub fn from_u8(b: u8) -> Option<CodecId> {
        match b {
            0 => Some(CodecId::Raw),
            1 => Some(CodecId::Lzrw1),
            2 => Some(CodecId::Rle),
            3 => Some(CodecId::Lzss),
            4 => Some(CodecId::SameFilled),
            5 => Some(CodecId::Bdi),
            _ => None,
        }
    }

    /// The wire byte.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CodecId::Raw => "raw",
            CodecId::Lzrw1 => "lzrw1",
            CodecId::Rle => "rle",
            CodecId::Lzss => "lzss",
            CodecId::SameFilled => "same-filled",
            CodecId::Bdi => "bdi",
        }
    }
}

/// A [`Compressor`] with a stable identity the store can persist.
pub trait Codec: Compressor {
    /// The stable id recorded wherever this codec's output is stored.
    fn id(&self) -> CodecId;
}

impl Codec for Null {
    fn id(&self) -> CodecId {
        CodecId::Raw
    }
}
impl Codec for Lzrw1 {
    fn id(&self) -> CodecId {
        CodecId::Lzrw1
    }
}
impl Codec for Rle {
    fn id(&self) -> CodecId {
        CodecId::Rle
    }
}
impl Codec for Lzss {
    fn id(&self) -> CodecId {
        CodecId::Lzss
    }
}
impl Codec for SameFilled {
    fn id(&self) -> CodecId {
        CodecId::SameFilled
    }
}
impl Codec for Bdi {
    fn id(&self) -> CodecId {
        CodecId::Bdi
    }
}

/// Construct the codec registered under `id` (fresh state; prefer a
/// long-lived [`CodecSet`] on hot paths).
pub fn codec_for(id: CodecId) -> Box<dyn Codec> {
    match id {
        CodecId::Raw => Box::new(Null::new()),
        CodecId::Lzrw1 => Box::new(Lzrw1::new()),
        CodecId::Rle => Box::new(Rle::new()),
        CodecId::Lzss => Box::new(Lzss::new()),
        CodecId::SameFilled => Box::new(SameFilled::new()),
        CodecId::Bdi => Box::new(Bdi::new()),
    }
}

/// Which codec(s) the store's put path may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CodecPolicy {
    /// Always LZRW1 (the paper's configuration; pre-codec-layer behavior).
    Lzrw1Only,
    /// Always BDI (word-pattern pages compress hard, everything else
    /// stores raw — an ablation arm, not a production setting).
    BdiOnly,
    /// Probe each page; BDI when the word-pattern classifier predicts it
    /// beats the admit bound, LZRW1 otherwise (with fallback if the
    /// prediction misses).
    #[default]
    Adaptive,
}

impl CodecPolicy {
    /// Stable name, also accepted by [`CodecPolicy::parse`].
    pub fn name(self) -> &'static str {
        match self {
            CodecPolicy::Lzrw1Only => "lzrw1-only",
            CodecPolicy::BdiOnly => "bdi-only",
            CodecPolicy::Adaptive => "adaptive",
        }
    }

    /// Parse a policy name as used by bench CLIs.
    pub fn parse(s: &str) -> Option<CodecPolicy> {
        match s {
            "lzrw1-only" | "lzrw1" => Some(CodecPolicy::Lzrw1Only),
            "bdi-only" | "bdi" => Some(CodecPolicy::BdiOnly),
            "adaptive" => Some(CodecPolicy::Adaptive),
            _ => None,
        }
    }

    /// All sweepable policies, for bench iteration.
    pub fn all() -> [CodecPolicy; 3] {
        [
            CodecPolicy::Lzrw1Only,
            CodecPolicy::Adaptive,
            CodecPolicy::BdiOnly,
        ]
    }
}

/// Number of 8-byte words the probe samples (eight 64-byte cache lines'
/// worth, spread evenly across the page).
const PROBE_WORDS: usize = 64;

/// Cheap classifier: would BDI's delta scheme fit `page` under
/// `admit_bound` bytes? Samples [`PROBE_WORDS`] evenly spaced words
/// (~1.5% of a 4 KB page) instead of scanning all of them, so a "no" costs
/// almost nothing on pages LZRW1 will handle anyway. The prediction is
/// optimistic — unsampled words can widen the delta — which is why
/// adaptive selection re-checks the real compressed size and falls back.
pub fn probe_bdi(page: &[u8], admit_bound: usize) -> bool {
    let nwords = page.len() / 8;
    if nwords == 0 {
        return false;
    }
    let word_at =
        |i: usize| u64::from_le_bytes(page[i * 8..i * 8 + 8].try_into().expect("8-byte word"));
    let base = word_at(0);
    let samples = PROBE_WORDS.min(nwords);
    let (mut wbase, mut wzero) = (1usize, 1usize);
    for s in 0..samples {
        let w = word_at(s * nwords / samples);
        wbase = wbase.max(crate::bdi::sig_width(w.wrapping_sub(base) as i64));
        wzero = wzero.max(crate::bdi::sig_width(w as i64));
    }
    let width = wbase.min(wzero);
    if width == 8 {
        return false;
    }
    // Predicted delta-scheme size (zero/repeated pages predict smaller
    // still; the delta bound covers them).
    let predicted = 2 + 1 + 8 + width * nwords + page.len() % 8;
    predicted <= admit_bound
}

/// What [`CodecSet::compress_with_policy`] chose and produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// Codec that sealed the bytes now in `dst` ([`CodecId::Raw`] when the
    /// threshold rejected compression).
    pub codec: CodecId,
    /// `dst.len()` — the sealed size including the method byte.
    pub len: usize,
    /// Whether the threshold admitted the compressed form. When `false`,
    /// `dst` holds a stored block and `codec` is [`CodecId::Raw`].
    pub admitted: bool,
    /// Adaptive only: the probe predicted BDI but its real output missed
    /// the admit bound, so LZRW1 ran as well.
    pub fell_back: bool,
}

/// The codecs a put path selects among, owned per thread (LZRW1 carries
/// its hash table; reusing it avoids a per-page allocation).
#[derive(Debug)]
pub struct CodecSet {
    lzrw1: Lzrw1,
    bdi: Bdi,
}

impl Default for CodecSet {
    fn default() -> Self {
        CodecSet::new()
    }
}

impl CodecSet {
    /// Create the set with default codec parameters.
    pub fn new() -> Self {
        CodecSet {
            lzrw1: Lzrw1::new(),
            bdi: Bdi::new(),
        }
    }

    /// Worst-case sealed size any codec reachable under `policy` may
    /// produce for `n` input bytes. Scratch buffers must be sized to
    /// *this*, not to one codec's bound.
    pub fn max_compressed_len(&self, policy: CodecPolicy, n: usize) -> usize {
        let lz = self.lzrw1.max_compressed_len(n);
        let bdi = self.bdi.max_compressed_len(n);
        // A threshold reject rewrites dst as a stored block (n + 1).
        let stored = n + 1;
        match policy {
            CodecPolicy::Lzrw1Only => lz.max(stored),
            CodecPolicy::BdiOnly => bdi.max(stored),
            CodecPolicy::Adaptive => lz.max(bdi).max(stored),
        }
    }

    /// Compress `page` into `dst` under `policy`, then apply `threshold`.
    ///
    /// On [`CompressDecision::Reject`] the contents of `dst` are replaced
    /// with a stored block and the selection reports [`CodecId::Raw`], so
    /// `dst` is always sealed by exactly the codec named in the result.
    pub fn compress_with_policy(
        &mut self,
        policy: CodecPolicy,
        threshold: ThresholdPolicy,
        page: &[u8],
        dst: &mut Vec<u8>,
    ) -> Selection {
        self.compress_with_hint(policy, threshold, page, dst, None)
    }

    /// Like [`CodecSet::compress_with_policy`], but accepting a cached
    /// [`probe_bdi`] verdict for this exact page content.
    ///
    /// A caller that already probed the page — e.g. a tiering layer that
    /// used the probe as its placement hint and recorded it per entry —
    /// passes `Some(verdict)` so adaptive selection skips the second
    /// probe; `None` probes here as usual. The hint must come from
    /// `probe_bdi(page, threshold.max_compressed_len(page.len()))` on
    /// unchanged bytes: a stale hint only costs the fallback pass the
    /// probe exists to avoid, never correctness, because the real
    /// compressed size is re-checked either way.
    pub fn compress_with_hint(
        &mut self,
        policy: CodecPolicy,
        threshold: ThresholdPolicy,
        page: &[u8],
        dst: &mut Vec<u8>,
        probe_hint: Option<bool>,
    ) -> Selection {
        let n = page.len();
        // Per-codec scratch sizing: reserve the worst case for *this*
        // policy's codec set up front so no codec ever reallocates
        // mid-compress or overruns a smaller codec's assumption.
        let bound = self.max_compressed_len(policy, n);
        dst.clear();
        dst.reserve(bound);

        let admit = threshold.max_compressed_len(n);
        let (codec, fell_back) = match policy {
            CodecPolicy::Lzrw1Only => {
                self.lzrw1.compress(page, dst);
                (CodecId::Lzrw1, false)
            }
            CodecPolicy::BdiOnly => {
                self.bdi.compress(page, dst);
                (CodecId::Bdi, false)
            }
            CodecPolicy::Adaptive => {
                if probe_hint.unwrap_or_else(|| probe_bdi(page, admit)) {
                    let len = self.bdi.compress(page, dst);
                    if len <= admit {
                        (CodecId::Bdi, false)
                    } else {
                        // The sampled probe was too optimistic; pay the
                        // LZ pass it was meant to avoid.
                        self.lzrw1.compress(page, dst);
                        (CodecId::Lzrw1, true)
                    }
                } else {
                    self.lzrw1.compress(page, dst);
                    (CodecId::Lzrw1, false)
                }
            }
        };
        assert!(
            dst.len() <= bound,
            "{} produced {} bytes for {} input, over its {} bound",
            codec.name(),
            dst.len(),
            n,
            bound
        );
        match threshold.evaluate(n, dst.len()) {
            CompressDecision::Keep => Selection {
                codec,
                len: dst.len(),
                admitted: true,
                fell_back,
            },
            CompressDecision::Reject => {
                let len = store_raw(page, dst);
                Selection {
                    codec: CodecId::Raw,
                    len,
                    admitted: false,
                    fell_back,
                }
            }
        }
    }

    /// Decode a block sealed by `codec` (as recorded in the entry or the
    /// extent header). The method byte inside `src` must agree with the
    /// recorded id — a mismatch is a [`DecompressError`], never a decode
    /// under the wrong codec.
    pub fn decompress(
        &mut self,
        codec: CodecId,
        src: &[u8],
        dst: &mut Vec<u8>,
        expected_len: usize,
    ) -> Result<(), DecompressError> {
        match src.first() {
            None => return Err(DecompressError::Truncated),
            // A stored block is decodable by any codec; any other method
            // byte must match the recorded codec id exactly.
            Some(&m) if m != 0 && m != codec.as_u8() => return Err(DecompressError::BadMethod(m)),
            _ => {}
        }
        match codec {
            CodecId::Raw => Null::new().decompress(src, dst, expected_len),
            CodecId::Lzrw1 => self.lzrw1.decompress(src, dst, expected_len),
            CodecId::Rle => Rle::new().decompress(src, dst, expected_len),
            CodecId::Lzss => Lzss::new().decompress(src, dst, expected_len),
            CodecId::SameFilled => SameFilled::new().decompress(src, dst, expected_len),
            CodecId::Bdi => self.bdi.decompress(src, dst, expected_len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn narrow_page(n: usize) -> Vec<u8> {
        let mut page = vec![0u8; n];
        for (i, w) in page.chunks_exact_mut(8).enumerate() {
            w[..2].copy_from_slice(&(i as u16).to_le_bytes());
        }
        page
    }

    fn text_page(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i / 13 % 64) as u8 + b' ').collect()
    }

    fn noise_page(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = cc_util::SplitMix64::new(seed);
        (0..n).map(|_| rng.next_u64() as u8).collect()
    }

    #[test]
    fn codec_id_round_trips_and_matches_method_bytes() {
        for id in [
            CodecId::Raw,
            CodecId::Lzrw1,
            CodecId::Rle,
            CodecId::Lzss,
            CodecId::SameFilled,
            CodecId::Bdi,
        ] {
            assert_eq!(CodecId::from_u8(id.as_u8()), Some(id));
            let mut codec = codec_for(id);
            // A compressible input that each codec actually claims: its
            // output's method byte equals the id (or 0 for stored).
            let input = vec![7u8; 256];
            let mut packed = Vec::new();
            codec.compress(&input, &mut packed);
            assert!(
                packed[0] == id.as_u8() || packed[0] == 0,
                "{}: method byte {} vs id {}",
                id.name(),
                packed[0],
                id.as_u8()
            );
        }
        assert_eq!(CodecId::from_u8(6), None);
        assert_eq!(CodecId::from_u8(0xEE), None);
    }

    #[test]
    fn probe_classifies_obvious_pages() {
        let t = ThresholdPolicy::default();
        let admit = t.max_compressed_len(4096);
        assert!(probe_bdi(&vec![0u8; 4096], admit));
        assert!(probe_bdi(&narrow_page(4096), admit));
        assert!(!probe_bdi(&noise_page(4096, 3), admit));
        assert!(!probe_bdi(&[], admit));
        // Text pages are byte-regular but word-irregular: LZRW1 territory.
        assert!(!probe_bdi(&text_page(4096), admit));
    }

    #[test]
    fn adaptive_picks_bdi_on_patterns_and_lzrw1_on_text() {
        let mut set = CodecSet::new();
        let t = ThresholdPolicy::default();
        let mut dst = Vec::new();

        let sel = set.compress_with_policy(CodecPolicy::Adaptive, t, &narrow_page(4096), &mut dst);
        assert_eq!(sel.codec, CodecId::Bdi);
        assert!(sel.admitted && !sel.fell_back);

        let sel = set.compress_with_policy(CodecPolicy::Adaptive, t, &text_page(4096), &mut dst);
        assert_eq!(sel.codec, CodecId::Lzrw1);
        assert!(sel.admitted && !sel.fell_back);

        let sel =
            set.compress_with_policy(CodecPolicy::Adaptive, t, &noise_page(4096, 9), &mut dst);
        assert_eq!(sel.codec, CodecId::Raw);
        assert!(!sel.admitted);
        assert_eq!(sel.len, 4097);
    }

    #[test]
    fn cached_probe_hint_matches_inline_probe() {
        let mut set = CodecSet::new();
        let t = ThresholdPolicy::default();
        for page in [
            vec![0u8; 4096],
            narrow_page(4096),
            text_page(4096),
            noise_page(4096, 23),
        ] {
            let hint = probe_bdi(&page, t.max_compressed_len(page.len()));
            let mut inline = Vec::new();
            let baseline = set.compress_with_policy(CodecPolicy::Adaptive, t, &page, &mut inline);
            let mut hinted = Vec::new();
            let sel =
                set.compress_with_hint(CodecPolicy::Adaptive, t, &page, &mut hinted, Some(hint));
            assert_eq!(sel, baseline);
            assert_eq!(hinted, inline);
        }
        // A stale "not BDI" hint must still seal correctly — it only
        // forfeits the BDI attempt, never integrity.
        let page = narrow_page(4096);
        let mut dst = Vec::new();
        let sel = set.compress_with_hint(CodecPolicy::Adaptive, t, &page, &mut dst, Some(false));
        assert_ne!(sel.codec, CodecId::Bdi);
        let mut out = Vec::new();
        set.decompress(sel.codec, &dst, &mut out, page.len())
            .unwrap();
        assert_eq!(out, page);
    }

    #[test]
    fn probe_miss_falls_back_to_lzrw1() {
        // First 64 sampled words are zero, but the words between samples
        // are wide: the probe predicts BDI, the real pass misses the
        // bound, and adaptive must fall back — with text filler so LZRW1
        // still admits the page.
        let mut page = text_page(4096);
        let mut rng = cc_util::SplitMix64::new(11);
        for (i, w) in page.chunks_exact_mut(8).enumerate() {
            if i % 8 == 0 {
                w.copy_from_slice(&0u64.to_le_bytes());
            } else if i % 8 == 1 {
                w.copy_from_slice(&rng.next_u64().to_le_bytes());
            }
        }
        let t = ThresholdPolicy::default();
        assert!(probe_bdi(&page, t.max_compressed_len(page.len())));
        let mut set = CodecSet::new();
        let mut dst = Vec::new();
        let sel = set.compress_with_policy(CodecPolicy::Adaptive, t, &page, &mut dst);
        assert!(sel.fell_back, "expected a probe misprediction");
        assert_ne!(sel.codec, CodecId::Bdi);
    }

    #[test]
    fn sealed_bytes_always_decode_with_recorded_codec() {
        let mut set = CodecSet::new();
        let t = ThresholdPolicy::default();
        for policy in CodecPolicy::all() {
            for page in [
                vec![0u8; 4096],
                narrow_page(4096),
                text_page(4096),
                noise_page(4096, 17),
                vec![],
                vec![3u8; 7],
            ] {
                let mut dst = Vec::new();
                let sel = set.compress_with_policy(policy, t, &page, &mut dst);
                assert_eq!(sel.len, dst.len());
                let mut out = Vec::new();
                set.decompress(sel.codec, &dst, &mut out, page.len())
                    .unwrap_or_else(|e| panic!("{:?}/{}: {e}", policy, sel.codec.name()));
                assert_eq!(out, page);
            }
        }
    }

    #[test]
    fn mismatched_codec_id_is_rejected_not_misdecoded() {
        let mut set = CodecSet::new();
        let mut dst = Vec::new();
        let sel = set.compress_with_policy(
            CodecPolicy::BdiOnly,
            ThresholdPolicy::default(),
            &narrow_page(4096),
            &mut dst,
        );
        assert_eq!(sel.codec, CodecId::Bdi);
        let mut out = Vec::new();
        for wrong in [
            CodecId::Lzrw1,
            CodecId::Rle,
            CodecId::SameFilled,
            CodecId::Raw,
        ] {
            assert!(
                set.decompress(wrong, &dst, &mut out, 4096).is_err(),
                "{} decoded bdi bytes",
                wrong.name()
            );
        }
    }

    #[test]
    fn policy_names_parse() {
        for p in CodecPolicy::all() {
            assert_eq!(CodecPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(CodecPolicy::parse("gzip"), None);
        assert_eq!(CodecPolicy::default(), CodecPolicy::Adaptive);
    }
}
