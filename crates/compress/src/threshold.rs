//! The keep-compressed threshold policy.
//!
//! §5.2 of the paper: *"about 98% of the pages compressed less than 4:3,
//! the threshold for keeping them in compressed format. Thus the time to
//! compress these pages was wasted effort."* A page is only stored
//! compressed when `original : compressed >= num : den` (default 4:3, i.e.
//! the compressed page must be at most 3/4 of the original).
//!
//! The threshold is a policy knob — the ablation bench sweeps it — so it is
//! represented as an explicit value rather than a constant.

/// Whether a compressed page is worth keeping in compressed form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressDecision {
    /// Ratio met the threshold: keep the page compressed.
    Keep,
    /// Ratio failed the threshold: discard the compressed copy; the
    /// compression effort was wasted (it is still *charged* by the
    /// simulator, which is the paper's point).
    Reject,
}

/// The `num:den` minimum compression ratio for keeping a page compressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThresholdPolicy {
    /// Ratio numerator (original side).
    pub num: u32,
    /// Ratio denominator (compressed side).
    pub den: u32,
}

impl Default for ThresholdPolicy {
    /// The paper's 4:3.
    fn default() -> Self {
        ThresholdPolicy { num: 4, den: 3 }
    }
}

impl ThresholdPolicy {
    /// Construct a `num:den` threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `num > den > 0` (a threshold of 1:1 or below would
    /// keep pages that did not shrink).
    pub fn new(num: u32, den: u32) -> Self {
        assert!(num > den && den > 0, "threshold must be > 1:1");
        ThresholdPolicy { num, den }
    }

    /// A policy that keeps every page that shrank by at least one byte
    /// (used by tests and the "no threshold" ablation arm).
    pub fn any_shrink() -> Self {
        // num/den barely above 1; evaluate() special-cases this marker by
        // requiring compressed < original.
        ThresholdPolicy {
            num: u32::MAX,
            den: u32::MAX - 1,
        }
    }

    /// Decide whether `compressed_len` is small enough relative to
    /// `original_len`.
    pub fn evaluate(&self, original_len: usize, compressed_len: usize) -> CompressDecision {
        if self.num == u32::MAX {
            return if compressed_len < original_len {
                CompressDecision::Keep
            } else {
                CompressDecision::Reject
            };
        }
        // Keep iff original/compressed >= num/den
        //      iff original * den >= compressed * num (all exact in u128).
        let lhs = original_len as u128 * self.den as u128;
        let rhs = compressed_len as u128 * self.num as u128;
        if lhs >= rhs {
            CompressDecision::Keep
        } else {
            CompressDecision::Reject
        }
    }

    /// The largest compressed size (in bytes) acceptable for a page of
    /// `original_len` bytes.
    pub fn max_compressed_len(&self, original_len: usize) -> usize {
        if self.num == u32::MAX {
            return original_len.saturating_sub(1);
        }
        (original_len as u128 * self.den as u128 / self.num as u128) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_threshold_on_a_4k_page() {
        let t = ThresholdPolicy::default();
        // 4:3 on 4096 bytes: keep at 3072, reject at 3073.
        assert_eq!(t.max_compressed_len(4096), 3072);
        assert_eq!(t.evaluate(4096, 3072), CompressDecision::Keep);
        assert_eq!(t.evaluate(4096, 3073), CompressDecision::Reject);
        assert_eq!(t.evaluate(4096, 1024), CompressDecision::Keep);
        assert_eq!(t.evaluate(4096, 4096), CompressDecision::Reject);
    }

    #[test]
    fn evaluate_matches_max_compressed_len() {
        for t in [
            ThresholdPolicy::default(),
            ThresholdPolicy::new(2, 1),
            ThresholdPolicy::new(3, 2),
            ThresholdPolicy::new(10, 9),
        ] {
            for orig in [1usize, 512, 4096, 8192, 4095] {
                let cap = t.max_compressed_len(orig);
                assert_eq!(
                    t.evaluate(orig, cap),
                    CompressDecision::Keep,
                    "{t:?} {orig}"
                );
                assert_eq!(
                    t.evaluate(orig, cap + 1),
                    CompressDecision::Reject,
                    "{t:?} {orig}"
                );
            }
        }
    }

    #[test]
    fn any_shrink_policy() {
        let t = ThresholdPolicy::any_shrink();
        assert_eq!(t.evaluate(4096, 4095), CompressDecision::Keep);
        assert_eq!(t.evaluate(4096, 4096), CompressDecision::Reject);
        assert_eq!(t.max_compressed_len(4096), 4095);
    }

    #[test]
    #[should_panic(expected = "threshold must be > 1:1")]
    fn one_to_one_rejected() {
        ThresholdPolicy::new(1, 1);
    }

    #[test]
    fn zero_length_page_keeps() {
        // A zero-byte "page" can't shrink; default policy keeps 0:0.
        let t = ThresholdPolicy::default();
        assert_eq!(t.evaluate(0, 0), CompressDecision::Keep);
    }
}
