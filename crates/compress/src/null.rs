//! The identity codec — "no compression" as a first-class [`Compressor`].
//!
//! Having the baseline behind the same trait lets the simulator's code path
//! be identical for the modified and unmodified systems, which keeps the
//! comparison honest: the only difference between `std` and `cc`
//! configurations is the codec and the cache policy, not the plumbing.

use crate::{load_raw, store_raw, Compressor, CostProfile, DecompressError, METHOD_STORED};

/// The identity codec: output = method byte + input.
#[derive(Debug, Clone, Default)]
pub struct Null;

impl Null {
    /// Create the codec.
    pub fn new() -> Self {
        Null
    }
}

impl Compressor for Null {
    fn name(&self) -> &'static str {
        "null"
    }

    fn compress(&mut self, src: &[u8], dst: &mut Vec<u8>) -> usize {
        store_raw(src, dst)
    }

    fn decompress(
        &mut self,
        src: &[u8],
        dst: &mut Vec<u8>,
        expected_len: usize,
    ) -> Result<(), DecompressError> {
        let (&method, body) = src.split_first().ok_or(DecompressError::Truncated)?;
        if method != METHOD_STORED {
            return Err(DecompressError::BadMethod(method));
        }
        load_raw(body, dst, expected_len)
    }

    fn cost_profile(&self) -> CostProfile {
        // A stored "compression" is a memcpy: ~16x an LZRW1 pass.
        CostProfile {
            compress_scale: 16.0,
            decompress_scale: 8.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let mut c = Null::new();
        let input = b"anything at all".to_vec();
        let mut packed = Vec::new();
        assert_eq!(c.compress(&input, &mut packed), input.len() + 1);
        let mut out = Vec::new();
        c.decompress(&packed, &mut out, input.len()).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn never_shrinks() {
        let mut c = Null::new();
        let mut packed = Vec::new();
        assert_eq!(c.compress(&[0u8; 4096], &mut packed), 4097);
    }
}
