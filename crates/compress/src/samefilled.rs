//! Same-filled pages (zswap-style) as a first-class codec.
//!
//! A "same-filled" page is one 8-byte word repeated end to end — zero
//! pages and memset patterns dominate this class in practice. The store
//! detects them before any compressor runs and keeps only the pattern
//! word; this module owns that detection ([`same_filled_pattern`] /
//! [`expand_same_filled`]) and also wraps it as a [`Compressor`] so the
//! codec registry can name the class with a stable id and decode a
//! serialized pattern wherever one lands (e.g. in a spill extent).
//!
//! Wire format: method tag [`METHOD_SAME_FILLED`] + the 8 pattern bytes
//! in page order. Non-pattern input falls back to the shared stored block.

use crate::{load_raw, store_raw, Compressor, CostProfile, DecompressError, METHOD_STORED};

/// Method tag for a same-filled block.
pub(crate) const METHOD_SAME_FILLED: u8 = 4;

/// Detect a page that is one 8-byte word repeated end to end (zswap's
/// "same-filled" pages: zero pages and memset patterns). Pages shorter
/// than a word qualify when all their bytes are equal; a tail shorter
/// than a word must match the leading bytes of the pattern.
pub fn same_filled_pattern(page: &[u8]) -> Option<u64> {
    if page.is_empty() {
        return None;
    }
    if page.len() < 8 {
        let b = page[0];
        return page[1..]
            .iter()
            .all(|&x| x == b)
            .then_some(u64::from_ne_bytes([b; 8]));
    }
    let word: [u8; 8] = page[..8].try_into().expect("8-byte prefix");
    let mut chunks = page.chunks_exact(8);
    if !chunks.by_ref().all(|c| c == word) {
        return None;
    }
    let rem = chunks.remainder();
    (*rem == word[..rem.len()]).then_some(u64::from_ne_bytes(word))
}

/// Reconstruct a same-filled page from its pattern word.
pub fn expand_same_filled(out: &mut [u8], pattern: u64) {
    let word = pattern.to_ne_bytes();
    let mut chunks = out.chunks_exact_mut(8);
    for c in chunks.by_ref() {
        c.copy_from_slice(&word);
    }
    let rem = chunks.into_remainder();
    let n = rem.len();
    rem.copy_from_slice(&word[..n]);
}

/// The same-filled class as a codec: 9 bytes for a pattern page, stored
/// fallback otherwise.
#[derive(Debug, Clone, Default)]
pub struct SameFilled;

impl SameFilled {
    /// Create the codec.
    pub fn new() -> Self {
        SameFilled
    }
}

impl Compressor for SameFilled {
    fn name(&self) -> &'static str {
        "same-filled"
    }

    fn compress(&mut self, src: &[u8], dst: &mut Vec<u8>) -> usize {
        // A pattern block is 9 bytes; below that, stored is no worse and
        // keeps the universal `n + 1` worst-case bound.
        match same_filled_pattern(src).filter(|_| src.len() > 8) {
            Some(pattern) => {
                dst.clear();
                dst.push(METHOD_SAME_FILLED);
                // The pattern is semantically 8 repeating bytes; the wire
                // carries them in page order.
                dst.extend_from_slice(&pattern.to_ne_bytes());
                dst.len()
            }
            None => store_raw(src, dst),
        }
    }

    fn decompress(
        &mut self,
        src: &[u8],
        dst: &mut Vec<u8>,
        expected_len: usize,
    ) -> Result<(), DecompressError> {
        let (&method, body) = src.split_first().ok_or(DecompressError::Truncated)?;
        if method == METHOD_STORED {
            return load_raw(body, dst, expected_len);
        }
        if method != METHOD_SAME_FILLED {
            return Err(DecompressError::BadMethod(method));
        }
        if body.len() < 8 {
            return Err(DecompressError::Truncated);
        }
        if body.len() > 8 {
            return Err(DecompressError::TrailingGarbage);
        }
        if expected_len == 0 {
            // An empty page is never same-filled; a pattern block claiming
            // zero length is malformed, not an empty output.
            return Err(DecompressError::OutputOverrun);
        }
        let pattern = u64::from_ne_bytes(body.try_into().expect("8-byte pattern"));
        dst.clear();
        dst.resize(expected_len, 0);
        expand_same_filled(dst, pattern);
        Ok(())
    }

    fn cost_profile(&self) -> CostProfile {
        // Detection is a single compare pass; expansion is a memset.
        CostProfile {
            compress_scale: 12.0,
            decompress_scale: 10.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_matrix() {
        assert_eq!(same_filled_pattern(&[0u8; 4096]), Some(0));
        let word = 0x0102_0304_0506_0708u64.to_ne_bytes();
        let repeated: Vec<u8> = word.iter().copied().cycle().take(4096).collect();
        assert_eq!(
            same_filled_pattern(&repeated),
            Some(u64::from_ne_bytes(word))
        );
        let mut bad_tail = repeated.clone();
        *bad_tail.last_mut().unwrap() ^= 1;
        assert_eq!(same_filled_pattern(&bad_tail), None);
        assert_eq!(same_filled_pattern(&[]), None);
        assert_eq!(
            same_filled_pattern(&[9u8; 5]),
            Some(u64::from_ne_bytes([9; 8]))
        );
    }

    #[test]
    fn codec_roundtrip_pattern_and_fallback() {
        let mut c = SameFilled::new();
        let mut packed = Vec::new();
        let mut out = Vec::new();

        let page = vec![0xABu8; 4096];
        assert_eq!(c.compress(&page, &mut packed), 9);
        c.decompress(&packed, &mut out, page.len()).unwrap();
        assert_eq!(out, page);
        // Ragged lengths expand correctly from the same block.
        c.decompress(&packed, &mut out, 13).unwrap();
        assert_eq!(out, vec![0xABu8; 13]);

        let mixed = b"not a pattern page".to_vec();
        assert_eq!(c.compress(&mixed, &mut packed), mixed.len() + 1);
        c.decompress(&packed, &mut out, mixed.len()).unwrap();
        assert_eq!(out, mixed);
    }

    #[test]
    fn malformed_blocks_error() {
        let mut c = SameFilled::new();
        let mut out = Vec::new();
        assert!(c
            .decompress(&[METHOD_SAME_FILLED, 1, 2], &mut out, 64)
            .is_err());
        assert!(c
            .decompress(
                &[METHOD_SAME_FILLED, 1, 2, 3, 4, 5, 6, 7, 8, 9],
                &mut out,
                64
            )
            .is_err());
        assert!(c
            .decompress(&[METHOD_SAME_FILLED, 1, 2, 3, 4, 5, 6, 7, 8], &mut out, 0)
            .is_err());
        assert!(c.decompress(&[0xEE, 0], &mut out, 1).is_err());
    }
}
