//! Property-based tests over all codecs.
//!
//! The compression cache stakes data integrity on these codecs: a page that
//! fails to roundtrip is silent memory corruption in the simulated system.
//! So we hammer the roundtrip and the decoder's robustness with generated
//! inputs, including structured ones that look like real page contents.

use cc_compress::{
    Bdi, CodecPolicy, CodecSet, Compressor, Lzrw1, Lzss, Null, Rle, SameFilled, ThresholdPolicy,
};
use proptest::prelude::*;

fn codecs() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(Lzrw1::new()),
        Box::new(Lzrw1::with_entries(256)),
        Box::new(Lzss::new()),
        Box::new(Rle::new()),
        Box::new(Null::new()),
        Box::new(Bdi::new()),
        Box::new(SameFilled::new()),
    ]
}

/// Inputs biased toward page-like structure: runs, repeated words, and raw
/// noise, in arbitrary concatenation.
fn page_like() -> impl Strategy<Value = Vec<u8>> {
    let chunk = prop_oneof![
        // A run of one byte.
        (any::<u8>(), 1usize..200).prop_map(|(b, n)| vec![b; n]),
        // A small repeated "word".
        (proptest::collection::vec(any::<u8>(), 1..8), 1usize..40).prop_map(|(w, n)| w
            .iter()
            .cycle()
            .take(w.len() * n)
            .cloned()
            .collect()),
        // Raw noise.
        proptest::collection::vec(any::<u8>(), 0..256),
    ];
    proptest::collection::vec(chunk, 0..12).prop_map(|chunks| chunks.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_arbitrary_bytes(input in proptest::collection::vec(any::<u8>(), 0..6000)) {
        for codec in codecs().iter_mut() {
            let mut packed = Vec::new();
            let n = codec.compress(&input, &mut packed);
            prop_assert!(n <= codec.max_compressed_len(input.len()));
            let mut out = Vec::new();
            codec.decompress(&packed, &mut out, input.len()).unwrap();
            prop_assert_eq!(&out, &input, "codec {}", codec.name());
        }
    }

    #[test]
    fn roundtrip_page_like(input in page_like()) {
        for codec in codecs().iter_mut() {
            let mut packed = Vec::new();
            codec.compress(&input, &mut packed);
            let mut out = Vec::new();
            codec.decompress(&packed, &mut out, input.len()).unwrap();
            prop_assert_eq!(&out, &input, "codec {}", codec.name());
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(
        garbage in proptest::collection::vec(any::<u8>(), 0..512),
        expected in 0usize..5000,
    ) {
        for codec in codecs().iter_mut() {
            let mut out = Vec::new();
            // Any result is fine; panicking or producing the wrong length is not.
            if codec.decompress(&garbage, &mut out, expected).is_ok() {
                prop_assert_eq!(out.len(), expected, "codec {}", codec.name());
            }
        }
    }

    #[test]
    fn decoder_never_panics_on_bitflipped_valid_input(
        input in page_like(),
        flip_byte in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        for codec in codecs().iter_mut() {
            let mut packed = Vec::new();
            codec.compress(&input, &mut packed);
            if packed.is_empty() {
                continue;
            }
            let idx = flip_byte % packed.len();
            packed[idx] ^= 1 << flip_bit;
            let mut out = Vec::new();
            // Corruption may or may not be detected (no checksums, as in
            // the original), but must never panic or overrun.
            if codec.decompress(&packed, &mut out, input.len()).is_ok() {
                prop_assert_eq!(out.len(), input.len());
            }
        }
    }

    #[test]
    fn compressed_output_is_deterministic(input in page_like()) {
        for codec in codecs().iter_mut() {
            let mut a = Vec::new();
            let mut b = Vec::new();
            codec.compress(&input, &mut a);
            codec.compress(&input, &mut b);
            prop_assert_eq!(&a, &b, "codec {}", codec.name());
        }
    }
}

/// Inputs engineered to stress the LZRW1 fast copy paths added for the
/// sharded-store work: overlapping matches (offset < match length), runs
/// that straddle the 4 KB page boundary, and incompressible noise that
/// must fall back to a stored block.
fn adversarial_lzrw1() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Short-period runs: decode as overlapping copies with
        // offset 1..=17, below the 18-byte max match length.
        (any::<u8>(), 1usize..18, 19usize..600).prop_map(|(b, period, total)| {
            (0..total)
                .map(|i| b.wrapping_add((i % period) as u8))
                .collect()
        }),
        // A literal region, then a run crossing the 4 KB boundary, then a
        // back-reference to material from before the boundary.
        (any::<u8>(), 1usize..64).prop_map(|(b, tail)| {
            let mut v: Vec<u8> = (0..4096 - 32).map(|i| (i % 253) as u8).collect();
            v.extend(std::iter::repeat_n(b, 64)); // run across the boundary
            v.extend((0..tail).map(|i| (i % 253) as u8)); // match pre-boundary bytes
            v
        }),
        // Alternating compressible/incompressible stripes: every group
        // mixes copy items with maximal literal runs.
        (1u64..u64::MAX, 8usize..40).prop_map(|(seed, stripe)| {
            let mut rng = cc_util::SplitMix64::new(seed);
            let mut v = Vec::with_capacity(4096);
            while v.len() < 4096 {
                v.extend(std::iter::repeat_n(0xAB, stripe));
                v.extend((0..stripe).map(|_| rng.next_u64() as u8));
            }
            v.truncate(4096);
            v
        }),
        // Pure noise pages: must take the stored-block fallback and still
        // roundtrip byte-exactly.
        (1u64..u64::MAX).prop_map(|seed| {
            let mut rng = cc_util::SplitMix64::new(seed);
            (0..4096).map(|_| rng.next_u64() as u8).collect()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn lzrw1_adversarial_roundtrip(input in adversarial_lzrw1()) {
        for entries in [256usize, 4096] {
            let mut lz = cc_compress::Lzrw1::with_entries(entries);
            let mut packed = Vec::new();
            let n = lz.compress(&input, &mut packed);
            prop_assert!(n <= input.len() + 1);
            let mut out = Vec::new();
            lz.decompress(&packed, &mut out, input.len()).unwrap();
            prop_assert_eq!(&out, &input, "table entries {}", entries);
        }
    }

    /// Back-to-back blocks through one codec instance: the generation
    /// trick that replaced the per-block table clear must never let one
    /// block's matches leak into the next.
    #[test]
    fn lzrw1_no_state_leak_across_blocks(
        first in adversarial_lzrw1(),
        second in adversarial_lzrw1(),
    ) {
        let mut shared = cc_compress::Lzrw1::new();
        let mut scratch = Vec::new();
        shared.compress(&first, &mut scratch);
        let mut via_shared = Vec::new();
        shared.compress(&second, &mut via_shared);
        // A fresh codec must produce the identical encoding.
        let mut fresh = cc_compress::Lzrw1::new();
        let mut via_fresh = Vec::new();
        fresh.compress(&second, &mut via_fresh);
        prop_assert_eq!(&via_shared, &via_fresh);
        let mut out = Vec::new();
        shared.decompress(&via_shared, &mut out, second.len()).unwrap();
        prop_assert_eq!(&out, &second);
    }
}

/// Inputs engineered against BDI's word classifier: pages that sit exactly
/// on scheme boundaries (all-zero with one disturbed word, repeated words
/// with a ragged tail, deltas that straddle a width class, sign flips
/// around the base) plus plain noise that must take the stored fallback.
fn adversarial_bdi() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // All-zero except (maybe) one word — flips zero-scheme vs delta.
        (0usize..512, any::<bool>(), any::<u64>(), 1usize..4097).prop_map(
            |(pos, disturb, val, len)| {
                let mut v = vec![0u8; len];
                if disturb {
                    let nwords = len / 8;
                    if nwords > 0 {
                        let i = pos % nwords;
                        v[i * 8..i * 8 + 8].copy_from_slice(&val.to_le_bytes());
                    }
                }
                v
            }
        ),
        // One repeated word, arbitrary tail bytes — rep scheme only when
        // the tail matches the pattern's prefix.
        (
            any::<u64>(),
            1usize..512,
            proptest::collection::vec(any::<u8>(), 0..8)
        )
            .prop_map(|(w, n, tail)| {
                let mut v = Vec::with_capacity(n * 8 + tail.len());
                for _ in 0..n {
                    v.extend_from_slice(&w.to_le_bytes());
                }
                v.extend_from_slice(&tail);
                v
            }),
        // Base + deltas drawn to straddle width classes: some fit i8, a
        // few spill into i16/i32, signs on both sides of the base.
        (any::<u64>(), 1u64..1 << 32, 1usize..512, any::<u64>()).prop_map(
            |(base, spread, n, seed)| {
                let mut rng = cc_util::SplitMix64::new(seed | 1);
                let mut v = Vec::with_capacity(n * 8);
                for _ in 0..n {
                    let d = (rng.next_u64() % (2 * spread)) as i64 - spread as i64;
                    v.extend_from_slice(&base.wrapping_add(d as u64).to_le_bytes());
                }
                v
            }
        ),
        // Narrow absolute values around zero (the zero-base arm).
        (1usize..512, any::<u64>()).prop_map(|(n, seed)| {
            let mut rng = cc_util::SplitMix64::new(seed | 1);
            let mut v = Vec::with_capacity(n * 8);
            for _ in 0..n {
                let d = (rng.next_u64() % 512) as i64 - 256;
                v.extend_from_slice(&(d as u64).to_le_bytes());
            }
            v
        }),
        // Unaligned lengths of noise: stored-fallback territory.
        proptest::collection::vec(any::<u8>(), 0..4100),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bdi_adversarial_roundtrip(input in adversarial_bdi()) {
        let mut bdi = Bdi::new();
        let mut packed = Vec::new();
        let n = bdi.compress(&input, &mut packed);
        prop_assert!(n <= bdi.max_compressed_len(input.len()));
        let mut out = Vec::new();
        bdi.decompress(&packed, &mut out, input.len()).unwrap();
        prop_assert_eq!(&out, &input);
    }

    #[test]
    fn bdi_decoder_survives_corruption(
        input in adversarial_bdi(),
        flip_byte in 0usize..4200,
        flip_bit in 0u8..8,
        expected_skew in 0usize..128,
    ) {
        let mut bdi = Bdi::new();
        let mut packed = Vec::new();
        bdi.compress(&input, &mut packed);
        if packed.is_empty() {
            return Ok(());
        }
        let idx = flip_byte % packed.len();
        packed[idx] ^= 1 << flip_bit;
        let expected = (input.len() + expected_skew).saturating_sub(64);
        let mut out = Vec::new();
        // Detection is the extent CRC's job; the decoder's contract here
        // is only: no panic, no wrong-length success.
        if bdi.decompress(&packed, &mut out, expected).is_ok() {
            prop_assert_eq!(out.len(), expected);
        }
    }

    /// The adaptive-selection contract (whatever the probe decides): the
    /// sealed bytes decode back byte-for-byte under the codec the
    /// selection names, the sealed size never exceeds the policy-wide
    /// scratch bound, and an admitted page never exceeds the threshold's
    /// admit bound.
    #[test]
    fn selection_roundtrips_and_respects_bounds(
        input in adversarial_bdi(),
        num in 2u32..8,
    ) {
        let threshold = ThresholdPolicy::new(num, num - 1);
        let mut set = CodecSet::new();
        for policy in CodecPolicy::all() {
            let mut packed = Vec::new();
            let sel = set.compress_with_policy(policy, threshold, &input, &mut packed);
            prop_assert_eq!(sel.len, packed.len());
            prop_assert!(sel.len <= set.max_compressed_len(policy, input.len()));
            if sel.admitted {
                prop_assert!(
                    sel.len <= threshold.max_compressed_len(input.len()),
                    "admitted {} bytes over the {} admit bound under {:?}",
                    sel.len,
                    threshold.max_compressed_len(input.len()),
                    policy
                );
            }
            let mut out = Vec::new();
            set.decompress(sel.codec, &packed, &mut out, input.len()).unwrap();
            prop_assert_eq!(&out, &input, "policy {:?} codec {}", policy, sel.codec.name());
        }
    }
}
