//! Property-based tests over all codecs.
//!
//! The compression cache stakes data integrity on these codecs: a page that
//! fails to roundtrip is silent memory corruption in the simulated system.
//! So we hammer the roundtrip and the decoder's robustness with generated
//! inputs, including structured ones that look like real page contents.

use cc_compress::{Compressor, Lzrw1, Lzss, Null, Rle};
use proptest::prelude::*;

fn codecs() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(Lzrw1::new()),
        Box::new(Lzrw1::with_entries(256)),
        Box::new(Lzss::new()),
        Box::new(Rle::new()),
        Box::new(Null::new()),
    ]
}

/// Inputs biased toward page-like structure: runs, repeated words, and raw
/// noise, in arbitrary concatenation.
fn page_like() -> impl Strategy<Value = Vec<u8>> {
    let chunk = prop_oneof![
        // A run of one byte.
        (any::<u8>(), 1usize..200).prop_map(|(b, n)| vec![b; n]),
        // A small repeated "word".
        (proptest::collection::vec(any::<u8>(), 1..8), 1usize..40)
            .prop_map(|(w, n)| w.iter().cycle().take(w.len() * n).cloned().collect()),
        // Raw noise.
        proptest::collection::vec(any::<u8>(), 0..256),
    ];
    proptest::collection::vec(chunk, 0..12).prop_map(|chunks| chunks.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_arbitrary_bytes(input in proptest::collection::vec(any::<u8>(), 0..6000)) {
        for codec in codecs().iter_mut() {
            let mut packed = Vec::new();
            let n = codec.compress(&input, &mut packed);
            prop_assert!(n <= codec.max_compressed_len(input.len()));
            let mut out = Vec::new();
            codec.decompress(&packed, &mut out, input.len()).unwrap();
            prop_assert_eq!(&out, &input, "codec {}", codec.name());
        }
    }

    #[test]
    fn roundtrip_page_like(input in page_like()) {
        for codec in codecs().iter_mut() {
            let mut packed = Vec::new();
            codec.compress(&input, &mut packed);
            let mut out = Vec::new();
            codec.decompress(&packed, &mut out, input.len()).unwrap();
            prop_assert_eq!(&out, &input, "codec {}", codec.name());
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(
        garbage in proptest::collection::vec(any::<u8>(), 0..512),
        expected in 0usize..5000,
    ) {
        for codec in codecs().iter_mut() {
            let mut out = Vec::new();
            // Any result is fine; panicking or producing the wrong length is not.
            if codec.decompress(&garbage, &mut out, expected).is_ok() {
                prop_assert_eq!(out.len(), expected, "codec {}", codec.name());
            }
        }
    }

    #[test]
    fn decoder_never_panics_on_bitflipped_valid_input(
        input in page_like(),
        flip_byte in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        for codec in codecs().iter_mut() {
            let mut packed = Vec::new();
            codec.compress(&input, &mut packed);
            if packed.is_empty() {
                continue;
            }
            let idx = flip_byte % packed.len();
            packed[idx] ^= 1 << flip_bit;
            let mut out = Vec::new();
            // Corruption may or may not be detected (no checksums, as in
            // the original), but must never panic or overrun.
            if codec.decompress(&packed, &mut out, input.len()).is_ok() {
                prop_assert_eq!(out.len(), input.len());
            }
        }
    }

    #[test]
    fn compressed_output_is_deterministic(input in page_like()) {
        for codec in codecs().iter_mut() {
            let mut a = Vec::new();
            let mut b = Vec::new();
            codec.compress(&input, &mut a);
            codec.compress(&input, &mut b);
            prop_assert_eq!(&a, &b, "codec {}", codec.name());
        }
    }
}
