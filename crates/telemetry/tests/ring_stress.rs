//! The event ring under contention: no torn events, monotone sequence
//! numbers, and an exactly-reconciled drop count.
//!
//! Eight producer threads push self-checking events (the payload carries
//! a checksum of its own fields) while a consumer drains concurrently;
//! afterwards every observed event must verify, sequence numbers must be
//! strictly increasing with no gaps, and `pushed = drained + dropped +
//! still-queued` must balance to the item.

use cc_telemetry::{Event, EventRing};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Payload checksum: a torn event (fields from two different pushes)
/// cannot satisfy this relation.
fn checksum(kind: u32, a: u64) -> u64 {
    (kind as u64 ^ a).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5_A5A5_A5A5_A5A5
}

fn verify_events(events: &[Event]) {
    for e in events {
        assert_eq!(
            e.b,
            checksum(e.kind, e.a),
            "torn event observed: {e:?} (checksum mismatch)"
        );
    }
    for w in events.windows(2) {
        assert!(
            w[0].seq < w[1].seq,
            "sequence numbers not monotone: {} then {}",
            w[0].seq,
            w[1].seq
        );
    }
}

#[test]
fn eight_thread_contention_with_live_consumer() {
    const THREADS: u32 = 8;
    const PER_THREAD: u64 = 20_000;
    let ring = Arc::new(EventRing::new(256));
    let done = Arc::new(AtomicBool::new(false));

    // Live consumer drains while producers hammer the ring.
    let consumer = {
        let ring = Arc::clone(&ring);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut drained: Vec<Event> = Vec::new();
            loop {
                ring.drain(&mut drained);
                if done.load(Ordering::Relaxed) {
                    ring.drain(&mut drained);
                    break;
                }
                std::thread::yield_now();
            }
            drained
        })
    };

    let mut producers = Vec::new();
    for t in 0..THREADS {
        let ring = Arc::clone(&ring);
        producers.push(std::thread::spawn(move || {
            let mut accepted = 0u64;
            for i in 0..PER_THREAD {
                let a = ((t as u64) << 32) | i;
                if ring.push(t, a, checksum(t, a)).is_some() {
                    accepted += 1;
                }
            }
            accepted
        }));
    }
    let mut accepted_total = 0u64;
    for p in producers {
        accepted_total += p.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    let drained = consumer.join().unwrap();

    verify_events(&drained);
    // Per-producer subsequences arrive in program order (a is monotone
    // per kind) — a stronger no-reordering check than global seq order.
    for t in 0..THREADS {
        let mut last = None;
        for e in drained.iter().filter(|e| e.kind == t) {
            assert!(last.is_none_or(|l| l < e.a), "kind {t} reordered");
            last = Some(e.a);
        }
    }
    let pushed = THREADS as u64 * PER_THREAD;
    assert_eq!(ring.recorded(), accepted_total, "recorded != CAS-accepted");
    assert_eq!(
        ring.recorded() + ring.dropped(),
        pushed,
        "every push must be accepted or counted dropped"
    );
    assert_eq!(
        drained.len() as u64,
        accepted_total,
        "accepted events lost or duplicated: drained {} of {}",
        drained.len(),
        accepted_total
    );
}

/// Wrap-around under fire: a tiny ring that is at capacity essentially
/// the whole run, with a consumer draining concurrently. Every drain
/// batch lands mid-wrap, yet the union of batches must be exactly the
/// accepted events — dense, strictly monotone sequence numbers — and
/// `recorded + dropped` must balance the pushes to the item.
#[test]
fn drain_races_pushes_at_capacity() {
    const THREADS: u32 = 4;
    const PER_THREAD: u64 = 30_000;
    let ring = Arc::new(EventRing::new(8));
    let done = Arc::new(AtomicBool::new(false));

    let consumer = {
        let ring = Arc::clone(&ring);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut drained: Vec<Event> = Vec::new();
            loop {
                ring.drain(&mut drained);
                if done.load(Ordering::Relaxed) {
                    ring.drain(&mut drained);
                    break;
                }
            }
            drained
        })
    };

    let mut producers = Vec::new();
    for t in 0..THREADS {
        let ring = Arc::clone(&ring);
        producers.push(std::thread::spawn(move || {
            let mut accepted = 0u64;
            for i in 0..PER_THREAD {
                let a = ((t as u64) << 32) | i;
                if ring.push(t, a, checksum(t, a)).is_some() {
                    accepted += 1;
                }
                if i % 16 == 0 {
                    // Let the drainer in so the run interleaves drains
                    // with wrapping pushes instead of just filling once.
                    std::thread::yield_now();
                }
            }
            accepted
        }));
    }
    let mut accepted_total = 0u64;
    for p in producers {
        accepted_total += p.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    let drained = consumer.join().unwrap();

    verify_events(&drained);
    // Sequence numbers are dense across drain batches: accepted push k
    // carries seq k, and no event is lost or duplicated mid-wrap.
    for (i, e) in drained.iter().enumerate() {
        assert_eq!(e.seq, i as u64, "gap or duplicate at drained index {i}");
    }
    let pushed = THREADS as u64 * PER_THREAD;
    assert_eq!(ring.recorded(), accepted_total, "recorded != CAS-accepted");
    assert_eq!(
        drained.len() as u64,
        accepted_total,
        "accepted events lost or duplicated across wrapping drains"
    );
    assert_eq!(
        ring.recorded() + ring.dropped(),
        pushed,
        "drop accounting must balance exactly at capacity"
    );
    // The ring really was at capacity (pushes dropped) and refilled
    // after drains (more accepted than one capacity's worth).
    assert!(ring.dropped() > 0, "ring never hit capacity");
    assert!(
        ring.recorded() > ring.capacity() as u64,
        "ring never refilled after a drain"
    );
}

#[test]
fn overflow_drop_count_is_exact_without_consumer() {
    const THREADS: u32 = 8;
    const PER_THREAD: u64 = 5_000;
    let ring = Arc::new(EventRing::new(64));
    let mut producers = Vec::new();
    for t in 0..THREADS {
        let ring = Arc::clone(&ring);
        producers.push(std::thread::spawn(move || {
            for i in 0..PER_THREAD {
                let a = ((t as u64) << 32) | i;
                ring.push(t, a, checksum(t, a));
            }
        }));
    }
    for p in producers {
        p.join().unwrap();
    }
    let pushed = THREADS as u64 * PER_THREAD;
    // Nobody drained: exactly `capacity` events fit, the rest dropped.
    assert_eq!(ring.recorded(), ring.capacity() as u64);
    assert_eq!(ring.dropped(), pushed - ring.capacity() as u64);
    let mut out = Vec::new();
    ring.drain(&mut out);
    assert_eq!(out.len(), ring.capacity());
    verify_events(&out);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of pushes and drains conserves events:
    /// pushed = drained + dropped + still-queued, every drained event
    /// verifies, and sequences stay monotone across the whole run.
    #[test]
    fn push_drain_interleavings_conserve_events(
        ops in proptest::collection::vec(
            prop_oneof![
                3 => (0u32..4).prop_map(Some),   // push with kind
                1 => Just(None),                  // drain
            ],
            1..400,
        ),
        cap in 1usize..40,
    ) {
        let ring = EventRing::new(cap);
        let mut pushed = 0u64;
        let mut drained: Vec<Event> = Vec::new();
        let mut payload = 0u64;
        for op in ops {
            match op {
                Some(kind) => {
                    pushed += 1;
                    payload += 1;
                    ring.push(kind, payload, checksum(kind, payload));
                }
                None => ring.drain(&mut drained),
            }
        }
        let mut rest = Vec::new();
        ring.drain(&mut rest);
        let queued = rest.len() as u64;
        drained.extend(rest);
        for e in &drained {
            prop_assert_eq!(e.b, checksum(e.kind, e.a), "torn: {:?}", e);
        }
        for w in drained.windows(2) {
            prop_assert!(w[0].seq < w[1].seq, "non-monotone seq");
        }
        // Sequence numbers are dense: accepted push k has seq k.
        for (i, e) in drained.iter().enumerate() {
            prop_assert_eq!(e.seq, i as u64, "gap in sequence numbers");
        }
        prop_assert_eq!(
            pushed,
            drained.len() as u64 + ring.dropped(),
            "conservation failed: pushed {} drained {} dropped {} (queued at end {})",
            pushed, drained.len(), ring.dropped(), queued
        );
    }
}
