//! Point-in-time snapshots and their renderers/exporters.
//!
//! A [`Snapshot`] is plain data: counter sums, caller-supplied gauges,
//! per-operation latency summaries, cumulative event counts, and the
//! window of events drained from the ring since the previous snapshot.
//! It renders to hand-rolled JSON (the workspace is dependency-free; no
//! serde), to the Prometheus text exposition format, and to an aligned
//! human-readable table. An [`Exporter`] runs a background timer thread
//! that writes a fresh snapshot to a file or stdout at a fixed interval.

use crate::hist::HistSummary;
use crate::ring::Event;
use cc_util::fmt;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A point-in-time copy of everything a [`crate::Telemetry`] knows.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotonic counter sums, in bank order.
    pub counters: Vec<(&'static str, u64)>,
    /// Caller-supplied point-in-time gauges (resident bytes, file size,
    /// ...), appended after the snapshot is taken.
    pub gauges: Vec<(&'static str, u64)>,
    /// Per-operation latency summaries (nanoseconds), in op order.
    pub ops: Vec<(&'static str, HistSummary)>,
    /// Cumulative per-kind event counts (counted at record time, so they
    /// include events the ring later dropped).
    pub events: Vec<(&'static str, u64)>,
    /// Events drained from the ring by *this* snapshot — the structured
    /// window since the previous snapshot, oldest first.
    pub recent: Vec<Event>,
    /// Ring pushes rejected because the ring was full, cumulative.
    pub events_dropped: u64,
    /// Ring pushes accepted, cumulative.
    pub events_recorded: u64,
    /// Wall-clock time the snapshot was taken, seconds since the Unix
    /// epoch — lets consecutive scrapes be rate-converted.
    pub taken_unix_s: u64,
}

impl Snapshot {
    /// Append a gauge (chainable).
    pub fn gauge(mut self, name: &'static str, value: u64) -> Self {
        self.gauges.push((name, value));
        self
    }

    /// Look up a counter sum by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Look up an operation summary by name.
    pub fn op(&self, name: &str) -> Option<HistSummary> {
        self.ops.iter().find(|(n, _)| *n == name).map(|&(_, s)| s)
    }

    /// Look up a cumulative event count by name.
    pub fn event_count(&self, name: &str) -> Option<u64> {
        self.events
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Render as a JSON object. `indent` is the number of spaces the
    /// whole object is shifted right by (for embedding in a larger
    /// hand-rolled document, as `storebench` does).
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let mut out = String::from("{\n");
        let kv = |pairs: &[(&'static str, u64)]| -> String {
            pairs
                .iter()
                .map(|(n, v)| format!("{pad}    \"{n}\": {v}"))
                .collect::<Vec<_>>()
                .join(",\n")
        };
        out.push_str(&format!(
            "{pad}  \"counters\": {{\n{}\n{pad}  }},\n",
            kv(&self.counters)
        ));
        out.push_str(&format!(
            "{pad}  \"gauges\": {{\n{}\n{pad}  }},\n",
            kv(&self.gauges)
        ));
        let ops: Vec<String> = self
            .ops
            .iter()
            .map(|(n, s)| {
                let tail: Vec<String> = s
                    .tail
                    .iter()
                    .filter(|&&(_, t)| t != 0)
                    .map(|&(v, t)| format!("[{v}, {t}]"))
                    .collect();
                format!(
                    "{pad}    \"{n}\": {{\"count\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \"mean_ns\": {:.0}, \"sum_ns\": {}, \"max_trace\": {}, \"tail\": [{}]}}",
                    s.count, s.p50, s.p90, s.p99, s.max, s.mean, s.sum, s.max_trace,
                    tail.join(", ")
                )
            })
            .collect();
        out.push_str(&format!(
            "{pad}  \"ops\": {{\n{}\n{pad}  }},\n",
            ops.join(",\n")
        ));
        out.push_str(&format!(
            "{pad}  \"events\": {{\n{}\n{pad}  }},\n",
            kv(&self.events)
        ));
        out.push_str(&format!(
            "{pad}  \"events_recorded\": {},\n",
            self.events_recorded
        ));
        out.push_str(&format!(
            "{pad}  \"events_dropped\": {},\n",
            self.events_dropped
        ));
        out.push_str(&format!("{pad}  \"taken_unix_s\": {}\n", self.taken_unix_s));
        out.push_str(&format!("{pad}}}"));
        out
    }

    /// Render in the Prometheus text exposition format. Counter and
    /// event names become `<prefix>_<name>_total`, gauges
    /// `<prefix>_<name>`, and each op a `summary` with p50/p90/p99
    /// quantiles plus the `_sum`/`_count` pair (so `rate()` and
    /// average queries work) and `_max`. Every family carries a
    /// `# HELP` line ahead of its `# TYPE`.
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (n, v) in &self.counters {
            out.push_str(&format!(
                "# HELP {prefix}_{n}_total Monotonic count of {n} events.\n"
            ));
            out.push_str(&format!("# TYPE {prefix}_{n}_total counter\n"));
            out.push_str(&format!("{prefix}_{n}_total {v}\n"));
        }
        for (n, v) in &self.gauges {
            out.push_str(&format!(
                "# HELP {prefix}_{n} Point-in-time value of {n}.\n"
            ));
            out.push_str(&format!("# TYPE {prefix}_{n} gauge\n"));
            out.push_str(&format!("{prefix}_{n} {v}\n"));
        }
        for (n, s) in &self.ops {
            out.push_str(&format!(
                "# HELP {prefix}_{n}_latency_ns Latency of {n} operations in nanoseconds.\n"
            ));
            out.push_str(&format!("# TYPE {prefix}_{n}_latency_ns summary\n"));
            for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                out.push_str(&format!(
                    "{prefix}_{n}_latency_ns{{quantile=\"{q}\"}} {v}\n"
                ));
            }
            out.push_str(&format!("{prefix}_{n}_latency_ns_sum {}\n", s.sum));
            out.push_str(&format!("{prefix}_{n}_latency_ns_count {}\n", s.count));
            out.push_str(&format!("{prefix}_{n}_latency_ns_max {}\n", s.max));
        }
        for (n, v) in &self.events {
            out.push_str(&format!(
                "# HELP {prefix}_event_{n}_total Monotonic count of {n} events.\n"
            ));
            out.push_str(&format!("# TYPE {prefix}_event_{n}_total counter\n"));
            out.push_str(&format!("{prefix}_event_{n}_total {v}\n"));
        }
        out.push_str(&format!(
            "# HELP {prefix}_events_dropped_total Ring pushes dropped because the ring was full.\n"
        ));
        out.push_str(&format!("# TYPE {prefix}_events_dropped_total counter\n"));
        out.push_str(&format!(
            "{prefix}_events_dropped_total {}\n",
            self.events_dropped
        ));
        out.push_str(&format!(
            "# HELP {prefix}_snapshot_timestamp_seconds Unix time this snapshot was taken.\n"
        ));
        out.push_str(&format!(
            "# TYPE {prefix}_snapshot_timestamp_seconds gauge\n"
        ));
        out.push_str(&format!(
            "{prefix}_snapshot_timestamp_seconds {}\n",
            self.taken_unix_s
        ));
        out
    }

    /// Render as aligned human-readable tables (for example binaries and
    /// harness stdout).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut count_rows: Vec<Vec<String>> = Vec::new();
        for (n, v) in self.counters.iter().chain(self.gauges.iter()) {
            count_rows.push(vec![n.to_string(), v.to_string()]);
        }
        if !count_rows.is_empty() {
            out.push_str(&fmt::table(&["counter", "value"], &count_rows));
            out.push('\n');
        }
        let op_rows: Vec<Vec<String>> = self
            .ops
            .iter()
            .filter(|(_, s)| s.count > 0)
            .map(|(n, s)| {
                vec![
                    n.to_string(),
                    s.count.to_string(),
                    fmt::ns(s.p50),
                    fmt::ns(s.p90),
                    fmt::ns(s.p99),
                    fmt::ns(s.max),
                ]
            })
            .collect();
        if !op_rows.is_empty() {
            out.push_str(&fmt::table(
                &["op", "count", "p50", "p90", "p99", "max"],
                &op_rows,
            ));
            out.push('\n');
        }
        let ev_rows: Vec<Vec<String>> = self
            .events
            .iter()
            .filter(|(_, v)| *v > 0)
            .map(|(n, v)| vec![n.to_string(), v.to_string()])
            .collect();
        if !ev_rows.is_empty() {
            out.push_str(&fmt::table(&["event", "count"], &ev_rows));
            out.push_str(&format!(
                "ring: {} recorded, {} dropped, {} in this window\n",
                self.events_recorded,
                self.events_dropped,
                self.recent.len()
            ));
        }
        out
    }
}

/// Where an [`Exporter`] writes each snapshot.
#[derive(Debug, Clone)]
pub enum ExportTarget {
    /// Print to standard output.
    Stdout,
    /// Overwrite this file on every tick.
    File(PathBuf),
}

/// Which rendering an [`Exporter`] writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportFormat {
    /// [`Snapshot::to_json`].
    Json,
    /// [`Snapshot::to_prometheus`] with the given static prefix.
    Prometheus(&'static str),
}

/// A background timer thread exporting snapshots at a fixed interval.
///
/// The thread takes a fresh snapshot via the supplied closure (which may
/// add gauges) and writes it to the target every `interval`; it exports
/// one final snapshot when stopped or dropped, so short-lived processes
/// still leave a complete file behind.
///
/// Stopping — explicitly via [`Exporter::stop`] or implicitly on drop —
/// is deterministic: the timer waits on a condvar, the stop call
/// notifies it, and the thread is joined before `stop`/`drop` returns.
/// No detached thread survives the handle, and no export fires after
/// the join (the final flush happens *inside* it).
pub struct Exporter {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Exporter {
    /// Spawn the exporter thread.
    pub fn spawn<F>(
        interval: Duration,
        target: ExportTarget,
        format: ExportFormat,
        snap: F,
    ) -> Exporter
    where
        F: Fn() -> Snapshot + Send + 'static,
    {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cc-telemetry-exporter".into())
            .spawn(move || {
                let write = |s: &Snapshot| {
                    let text = match format {
                        ExportFormat::Json => {
                            let mut t = s.to_json(0);
                            t.push('\n');
                            t
                        }
                        ExportFormat::Prometheus(prefix) => s.to_prometheus(prefix),
                    };
                    match &target {
                        ExportTarget::Stdout => {
                            let mut out = std::io::stdout().lock();
                            let _ = out.write_all(text.as_bytes());
                            let _ = out.flush();
                        }
                        ExportTarget::File(path) => {
                            let _ = std::fs::write(path, text.as_bytes());
                        }
                    }
                };
                // Wait out each interval on the condvar: a stop wakes
                // the thread immediately instead of being noticed at
                // the next polling step. Spurious wakeups re-wait for
                // the remainder of the same deadline.
                let (lock, cv) = &*stop2;
                let mut stopped = lock.lock().expect("exporter stop flag poisoned");
                'run: while !*stopped {
                    let deadline = Instant::now() + interval;
                    loop {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        let (guard, _) = cv
                            .wait_timeout(stopped, deadline - now)
                            .expect("exporter stop flag poisoned");
                        stopped = guard;
                        if *stopped {
                            break 'run;
                        }
                    }
                    // Interval elapsed without a stop: export. Release
                    // the flag lock around the (possibly slow) snapshot
                    // + write so stop() is never blocked behind I/O.
                    drop(stopped);
                    write(&snap());
                    stopped = lock.lock().expect("exporter stop flag poisoned");
                }
                drop(stopped);
                // Final export so the last state is never lost. Runs
                // before the join in stop()/drop() completes — nothing
                // fires after the handle is gone.
                write(&snap());
            })
            .expect("spawn telemetry exporter");
        Exporter {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the thread, export once more, and join.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().expect("exporter stop flag poisoned") = true;
        cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut tail = [(0, 0); crate::hist::TAIL_SLOTS];
        tail[0] = (400, 77);
        Snapshot {
            counters: vec![("puts", 10), ("gets", 20)],
            gauges: vec![("resident_bytes", 4096)],
            ops: vec![(
                "put",
                HistSummary {
                    count: 10,
                    p50: 100,
                    p90: 200,
                    p99: 300,
                    max: 400,
                    mean: 150.0,
                    sum: 1500,
                    max_trace: 77,
                    tail,
                },
            )],
            events: vec![("gc_run", 2)],
            recent: vec![Event {
                seq: 0,
                kind: 0,
                a: 1,
                b: 2,
            }],
            events_dropped: 1,
            events_recorded: 3,
            taken_unix_s: 1_700_000_000,
        }
    }

    #[test]
    fn json_shape() {
        let j = sample().to_json(2);
        assert!(j.contains("\"puts\": 10"), "{j}");
        assert!(j.contains("\"p99_ns\": 300"), "{j}");
        assert!(j.contains("\"resident_bytes\": 4096"), "{j}");
        assert!(j.contains("\"events_dropped\": 1,"), "{j}");
        assert!(j.contains("\"sum_ns\": 1500"), "{j}");
        assert!(j.contains("\"max_trace\": 77"), "{j}");
        assert!(j.contains("\"tail\": [[400, 77]]"), "{j}");
        assert!(j.contains("\"taken_unix_s\": 1700000000"), "{j}");
        // Starts as an object and every line of the body is indented.
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with("  }"));
    }

    #[test]
    fn prometheus_shape() {
        let p = sample().to_prometheus("cc_store");
        assert!(p.contains("cc_store_puts_total 10"), "{p}");
        assert!(p.contains("cc_store_resident_bytes 4096"), "{p}");
        assert!(
            p.contains("cc_store_put_latency_ns{quantile=\"0.99\"} 300"),
            "{p}"
        );
        assert!(p.contains("cc_store_event_gc_run_total 2"), "{p}");
        assert!(p.contains("cc_store_events_dropped_total 1"), "{p}");
        assert!(p.contains("cc_store_put_latency_ns_sum 1500"), "{p}");
        assert!(
            p.contains("cc_store_snapshot_timestamp_seconds 1700000000"),
            "{p}"
        );
        // Every non-comment line is `name[{labels}] value`.
        for line in p.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line: {line}");
        }
    }

    /// Exposition-format conformance: every `# TYPE` is introduced by a
    /// `# HELP` for the same family, every summary family carries the
    /// `_sum`/`_count` pair real Prometheus needs for rate/avg queries,
    /// and every sample line parses as `name value`.
    #[test]
    fn prometheus_exposition_conformance() {
        let p = sample().to_prometheus("cc_x");
        let lines: Vec<&str> = p.lines().collect();
        let mut summaries = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let family = parts.next().unwrap();
                let kind = parts.next().unwrap();
                let help = lines[i.checked_sub(1).expect("TYPE with no HELP above")];
                assert!(
                    help.starts_with(&format!("# HELP {family} ")),
                    "family {family} lacks an adjacent HELP line: {help}"
                );
                if kind == "summary" {
                    summaries.push(family.to_string());
                }
            }
        }
        assert!(!summaries.is_empty());
        for family in &summaries {
            for suffix in ["_sum", "_count"] {
                assert!(
                    lines
                        .iter()
                        .any(|l| l.starts_with(&format!("{family}{suffix} "))),
                    "summary {family} lacks {suffix}"
                );
            }
        }
        for line in lines.iter().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split_whitespace();
            let name = parts.next().expect("metric name");
            let value = parts.next().expect("metric value");
            assert!(parts.next().is_none(), "extra tokens: {line}");
            assert!(name.starts_with("cc_x_"), "foreign metric: {line}");
            assert!(value.parse::<f64>().is_ok(), "non-numeric value: {line}");
        }
    }

    #[test]
    fn text_render_mentions_everything() {
        let t = sample().render_text();
        assert!(t.contains("puts"), "{t}");
        assert!(t.contains("resident_bytes"), "{t}");
        assert!(t.contains("gc_run"), "{t}");
        assert!(t.contains("100ns"), "{t}");
    }

    #[test]
    fn lookup_helpers() {
        let s = sample();
        assert_eq!(s.counter("puts"), Some(10));
        assert_eq!(s.counter("nope"), None);
        assert_eq!(s.op("put").unwrap().p50, 100);
        assert_eq!(s.event_count("gc_run"), Some(2));
    }

    #[test]
    fn exporter_writes_file_and_final_snapshot() {
        let dir = std::env::temp_dir().join(format!("cc-tel-exp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let exporter = Exporter::spawn(
            Duration::from_millis(20),
            ExportTarget::File(path.clone()),
            ExportFormat::Json,
            sample,
        );
        std::thread::sleep(Duration::from_millis(60));
        exporter.stop();
        let text = std::fs::read_to_string(&path).expect("exporter wrote file");
        assert!(text.contains("\"puts\": 10"), "{text}");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn drop_joins_timer_thread_and_stops_exports() {
        use std::sync::atomic::{AtomicU64, Ordering};

        let dir = std::env::temp_dir().join(format!("cc-tel-drop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");

        let exports = Arc::new(AtomicU64::new(0));
        let interval = Duration::from_millis(5);
        let exporter = {
            let exports = Arc::clone(&exports);
            Exporter::spawn(
                interval,
                ExportTarget::File(path.clone()),
                ExportFormat::Json,
                move || {
                    exports.fetch_add(1, Ordering::SeqCst);
                    sample()
                },
            )
        };
        // Let at least one periodic export happen, then drop the handle.
        while exports.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let before_drop = std::time::Instant::now();
        drop(exporter);
        let drop_took = before_drop.elapsed();

        // Drop must complete promptly: one condvar wake + the final
        // export, not an interval's worth of sleeping. Generous bound
        // for slow CI, but far below a polling worst case over many
        // intervals.
        assert!(
            drop_took < Duration::from_secs(2),
            "drop blocked for {drop_took:?}"
        );

        // After drop returns the thread is joined; no further exports
        // may fire. Sleep well past several intervals and check the
        // count is frozen.
        let frozen = exports.load(Ordering::SeqCst);
        std::thread::sleep(interval * 10);
        assert_eq!(
            exports.load(Ordering::SeqCst),
            frozen,
            "exporter kept exporting after drop"
        );

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
