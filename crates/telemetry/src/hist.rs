//! Lock-free latency histograms.
//!
//! An [`AtomicHistogram`] is the wait-free mirror of
//! [`cc_util::Histogram`]: the same log2 + 8-linear-sub-buckets layout
//! (±12.5% resolution), but every bucket is an `AtomicU64` in a
//! fixed-size array, so recording from any thread is one relaxed
//! `fetch_add` with no allocation and no lock — cheap enough for the
//! store's put/get hot path. Reading converts back into a plain
//! [`cc_util::Histogram`] (via `Histogram::from_raw`) for quantiles.

use cc_util::hist::{bucket_index, BUCKETS};
use cc_util::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-size, allocation-free, thread-safe histogram of `u64` samples
/// (latencies in nanoseconds, byte counts, ...).
///
/// Concurrent `record`s never block; a concurrent snapshot may miss
/// in-flight samples but never tears an individual bucket.
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Create an empty histogram (buckets allocated once, up front).
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Wait-free: four relaxed RMWs, no allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Largest sample recorded so far (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Convert to a plain [`Histogram`] for quantile math. Taken with
    /// relaxed loads: concurrent writers may leave the copy a few
    /// samples behind, but no bucket is ever torn.
    pub fn to_histogram(&self) -> Histogram {
        let raw: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Derive the count from the copied buckets so count and buckets
        // agree exactly (quantile ranks index into these buckets).
        let count: u64 = raw.iter().sum();
        Histogram::from_raw(
            &raw,
            count,
            self.sum.load(Ordering::Relaxed) as u128,
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }

    /// The percentile summary exported in snapshots.
    pub fn summary(&self) -> HistSummary {
        HistSummary::from_histogram(&self.to_histogram())
    }
}

/// Percentile summary of a histogram: what the JSON/Prometheus exporters
/// and the bench gates consume.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Median (lower bucket bound).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl HistSummary {
    /// Summarize a plain histogram.
    pub fn from_histogram(h: &Histogram) -> Self {
        HistSummary {
            count: h.count(),
            p50: h.quantile(0.50),
            p90: h.quantile(0.90),
            p99: h.quantile(0.99),
            max: if h.count() == 0 { 0 } else { h.max() },
            mean: h.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn matches_plain_histogram() {
        let a = AtomicHistogram::new();
        let mut p = Histogram::new();
        let mut rng = cc_util::SplitMix64::new(42);
        for _ in 0..20_000 {
            let v = rng.gen_range(5_000_000);
            a.record(v);
            p.record(v);
        }
        let snap = a.to_histogram();
        assert_eq!(snap.count(), p.count());
        assert_eq!(snap.sum(), p.sum());
        for &q in &[0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), p.quantile(q), "q={q}");
        }
        let s = a.summary();
        assert_eq!(s.count, 20_000);
        assert_eq!(s.p50, p.quantile(0.5));
        assert_eq!(s.max, p.max());
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = AtomicHistogram::new().summary();
        assert_eq!(s, HistSummary::default());
    }

    #[test]
    fn concurrent_records_count_exactly() {
        let h = Arc::new(AtomicHistogram::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    h.record(t * 1000 + i);
                }
            }));
        }
        for th in handles {
            th.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        let snap = h.to_histogram();
        assert_eq!(snap.count(), 40_000);
        assert_eq!(snap.max(), 7 * 1000 + 4999);
    }
}
