//! Lock-free latency histograms.
//!
//! An [`AtomicHistogram`] is the wait-free mirror of
//! [`cc_util::Histogram`]: the same log2 + 8-linear-sub-buckets layout
//! (±12.5% resolution), but every bucket is an `AtomicU64` in a
//! fixed-size array, so recording from any thread is one relaxed
//! `fetch_add` with no allocation and no lock — cheap enough for the
//! store's put/get hot path. Reading converts back into a plain
//! [`cc_util::Histogram`] (via `Histogram::from_raw`) for quantiles.

use cc_util::hist::{bucket_index, BUCKETS};
use cc_util::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-size, allocation-free, thread-safe histogram of `u64` samples
/// (latencies in nanoseconds, byte counts, ...).
///
/// Concurrent `record`s never block; a concurrent snapshot may miss
/// in-flight samples but never tears an individual bucket.
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Trace id of the sample that set (or last matched) `max`.
    max_trace: AtomicU64,
    /// Reservoir of recent traced observations at or above the tail
    /// floor: `(value, trace_id)` pairs.
    tail: [TailSlot; TAIL_SLOTS],
    /// Values below this skip the reservoir; lazily refreshed to the
    /// current p99 on each `summary` call so the reservoir converges on
    /// genuine tail samples.
    tail_floor: AtomicU64,
}

/// Slots in the p99+ exemplar reservoir.
pub const TAIL_SLOTS: usize = 8;

#[derive(Default)]
struct TailSlot {
    value: AtomicU64,
    trace: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Create an empty histogram (buckets allocated once, up front).
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            max_trace: AtomicU64::new(0),
            tail: Default::default(),
            tail_floor: AtomicU64::new(0),
        }
    }

    /// Record one sample. Wait-free: four relaxed RMWs, no allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_traced(v, 0);
    }

    /// Record one sample carrying a trace id (0 = untraced; identical
    /// cost to [`AtomicHistogram::record`]). Traced samples additionally
    /// maintain the max exemplar and, when at or above the tail floor,
    /// claim a reservoir slot. Exemplar pairs are written with two
    /// relaxed stores — a concurrent reader can observe a value with a
    /// neighbouring sample's trace id, which is acceptable for
    /// diagnostics and keeps the hot path lock-free.
    #[inline]
    pub fn record_traced(&self, v: u64, trace: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        let n = self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        let prev_max = self.max.fetch_max(v, Ordering::Relaxed);
        if trace != 0 {
            if v >= prev_max {
                self.max_trace.store(trace, Ordering::Relaxed);
            }
            if v >= self.tail_floor.load(Ordering::Relaxed) {
                let slot = &self.tail[n as usize % TAIL_SLOTS];
                slot.value.store(v, Ordering::Relaxed);
                slot.trace.store(trace, Ordering::Relaxed);
            }
        }
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Largest sample recorded so far (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Convert to a plain [`Histogram`] for quantile math. Taken with
    /// relaxed loads: concurrent writers may leave the copy a few
    /// samples behind, but no bucket is ever torn.
    pub fn to_histogram(&self) -> Histogram {
        let raw: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Derive the count from the copied buckets so count and buckets
        // agree exactly (quantile ranks index into these buckets).
        let count: u64 = raw.iter().sum();
        Histogram::from_raw(
            &raw,
            count,
            self.sum.load(Ordering::Relaxed) as u128,
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }

    /// The percentile summary exported in snapshots. Also refreshes the
    /// tail-exemplar floor to the current p99 so future reservoir
    /// entries stay in the tail.
    pub fn summary(&self) -> HistSummary {
        let mut s = HistSummary::from_histogram(&self.to_histogram());
        if s.count > 0 {
            self.tail_floor.store(s.p99, Ordering::Relaxed);
        }
        s.max_trace = self.max_trace.load(Ordering::Relaxed);
        for (dst, slot) in s.tail.iter_mut().zip(self.tail.iter()) {
            *dst = (
                slot.value.load(Ordering::Relaxed),
                slot.trace.load(Ordering::Relaxed),
            );
        }
        s
    }
}

/// Percentile summary of a histogram: what the JSON/Prometheus exporters
/// and the bench gates consume.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Median (lower bucket bound).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sum of all samples (saturating at `u64::MAX`).
    pub sum: u64,
    /// Trace id of the sample that set the max (0 = untraced).
    pub max_trace: u64,
    /// Tail-exemplar reservoir: `(value, trace_id)` pairs of recent
    /// traced p99+ observations; unused slots are `(0, 0)`.
    pub tail: [(u64, u64); TAIL_SLOTS],
}

impl HistSummary {
    /// Summarize a plain histogram (no exemplars — those live on the
    /// atomic side; see [`AtomicHistogram::summary`]).
    pub fn from_histogram(h: &Histogram) -> Self {
        HistSummary {
            count: h.count(),
            p50: h.quantile(0.50),
            p90: h.quantile(0.90),
            p99: h.quantile(0.99),
            max: if h.count() == 0 { 0 } else { h.max() },
            mean: h.mean(),
            sum: u64::try_from(h.sum()).unwrap_or(u64::MAX),
            max_trace: 0,
            tail: [(0, 0); TAIL_SLOTS],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn matches_plain_histogram() {
        let a = AtomicHistogram::new();
        let mut p = Histogram::new();
        let mut rng = cc_util::SplitMix64::new(42);
        for _ in 0..20_000 {
            let v = rng.gen_range(5_000_000);
            a.record(v);
            p.record(v);
        }
        let snap = a.to_histogram();
        assert_eq!(snap.count(), p.count());
        assert_eq!(snap.sum(), p.sum());
        for &q in &[0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), p.quantile(q), "q={q}");
        }
        let s = a.summary();
        assert_eq!(s.count, 20_000);
        assert_eq!(s.p50, p.quantile(0.5));
        assert_eq!(s.max, p.max());
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = AtomicHistogram::new().summary();
        assert_eq!(s, HistSummary::default());
    }

    #[test]
    fn exemplars_track_max_and_tail() {
        let h = AtomicHistogram::new();
        for i in 0..100u64 {
            h.record(i); // untraced: never touches exemplars
        }
        h.record_traced(1_000, 7);
        let s = h.summary();
        assert_eq!(s.max, 1_000);
        assert_eq!(s.max_trace, 7);
        assert!(s.tail.iter().any(|&(v, t)| v >= 1_000 && t == 7));
        // summary() raised the floor to p99: a small traced sample now
        // stays out of the reservoir and off the max exemplar.
        let tail_before = s.tail;
        h.record_traced(1, 9);
        let s2 = h.summary();
        assert_eq!(s2.tail, tail_before);
        assert_eq!(s2.max_trace, 7);
        // A new traced max replaces the exemplar.
        h.record_traced(2_000, 11);
        assert_eq!(h.summary().max_trace, 11);
    }

    #[test]
    fn concurrent_records_count_exactly() {
        let h = Arc::new(AtomicHistogram::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    h.record(t * 1000 + i);
                }
            }));
        }
        for th in handles {
            th.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        let snap = h.to_histogram();
        assert_eq!(snap.count(), 40_000);
        assert_eq!(snap.max(), 7 * 1000 + 4999);
    }
}
