//! Striped, cache-padded monotonic counters.
//!
//! The store's old `StoreStats` kept one plain `u64` per counter inside
//! each shard's mutex; reading them meant taking every shard lock in turn
//! and copying a struct whose fields came from different instants. A
//! [`CounterBank`] instead gives every *(stripe, counter)* pair its own
//! cache line: writers do one uncontended relaxed `fetch_add` (no lock
//! required at all), and readers aggregate with per-field atomic loads —
//! each field is individually exact, even while writers run.

use std::sync::atomic::{AtomicU64, Ordering};

/// One counter on its own cache line so neighbouring stripes (or
/// neighbouring counters of the same stripe) never false-share.
#[repr(align(128))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A bank of named monotonic counters, striped `stripes` ways.
///
/// Writers pick a stripe (typically their shard index) and add; readers
/// sum the stripes of one counter. Sums are monotone and per-field exact:
/// a concurrent reader may see counter A from slightly before counter B,
/// but never a torn or decreasing value.
pub struct CounterBank {
    names: &'static [&'static str],
    stripes: usize,
    /// Stripe-major: `cells[stripe * names.len() + counter]`.
    cells: Box<[PaddedU64]>,
}

impl CounterBank {
    /// Create a bank of `names.len()` counters striped `stripes` ways
    /// (`stripes` is clamped to at least 1).
    pub fn new(stripes: usize, names: &'static [&'static str]) -> Self {
        let stripes = stripes.max(1);
        let cells = (0..stripes * names.len())
            .map(|_| PaddedU64::default())
            .collect();
        CounterBank {
            names,
            stripes,
            cells,
        }
    }

    /// The counter names, in index order.
    pub fn names(&self) -> &'static [&'static str] {
        self.names
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.stripes
    }

    /// Add `n` to `counter` on `stripe` (stripe wraps modulo the bank).
    #[inline]
    pub fn add(&self, stripe: usize, counter: usize, n: u64) {
        debug_assert!(counter < self.names.len(), "counter {counter} out of range");
        let stripe = stripe % self.stripes;
        self.cells[stripe * self.names.len() + counter]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Sum of `counter` across all stripes.
    pub fn sum(&self, counter: usize) -> u64 {
        debug_assert!(counter < self.names.len(), "counter {counter} out of range");
        (0..self.stripes)
            .map(|s| {
                self.cells[s * self.names.len() + counter]
                    .0
                    .load(Ordering::Relaxed)
            })
            .sum()
    }

    /// `(name, sum)` for every counter.
    pub fn sums(&self) -> Vec<(&'static str, u64)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, self.sum(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const NAMES: &[&str] = &["a", "b", "c"];

    #[test]
    fn add_and_sum() {
        let bank = CounterBank::new(4, NAMES);
        bank.add(0, 0, 1);
        bank.add(1, 0, 2);
        bank.add(7, 0, 4); // wraps to stripe 3
        bank.add(2, 2, 10);
        assert_eq!(bank.sum(0), 7);
        assert_eq!(bank.sum(1), 0);
        assert_eq!(bank.sum(2), 10);
        assert_eq!(bank.sums(), vec![("a", 7), ("b", 0), ("c", 10)]);
    }

    #[test]
    fn zero_stripes_clamps_to_one() {
        let bank = CounterBank::new(0, NAMES);
        bank.add(5, 1, 3);
        assert_eq!(bank.sum(1), 3);
    }

    #[test]
    fn concurrent_adds_are_exact() {
        let bank = Arc::new(CounterBank::new(8, NAMES));
        let mut handles = Vec::new();
        for t in 0..8usize {
            let bank = Arc::clone(&bank);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    bank.add(t, (i % 3) as usize, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = (0..3).map(|c| bank.sum(c)).sum();
        assert_eq!(total, 80_000);
    }
}
