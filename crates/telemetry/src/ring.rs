//! A lock-free bounded MPMC event ring with drop counting.
//!
//! Structured events (batch committed, GC run, eviction, ...) are pushed
//! from any thread with a Vyukov-style bounded-queue protocol: a producer
//! claims a slot by CAS on the enqueue position, writes the payload, and
//! publishes it by storing the slot's sequence stamp with `Release`; a
//! consumer only reads a payload after an `Acquire` load of the stamp
//! shows it published, so events are never observed torn. When the ring
//! is full the push is *dropped and counted* rather than blocking or
//! overwriting — telemetry must never stall the data path, and an
//! accurate drop count tells the reader exactly how lossy the window was.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// A structured telemetry event.
///
/// `seq` is the global claim order of successful pushes: dequeue order is
/// strictly increasing in `seq`, and gaps never appear (dropped pushes do
/// not consume a sequence number).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Position in the global push order.
    pub seq: u64,
    /// Event kind, an index into the owner's event-name table.
    pub kind: u32,
    /// First payload word (meaning depends on `kind`).
    pub a: u64,
    /// Second payload word (meaning depends on `kind`).
    pub b: u64,
}

/// One ring slot: payload plus the Vyukov sequence stamp that hands the
/// slot back and forth between producers and consumers.
struct Slot {
    /// `pos` = free for the producer claiming position `pos`;
    /// `pos + 1` = published, readable by the consumer at `pos`;
    /// `pos + capacity` = consumed, free for the next lap's producer.
    stamp: AtomicU64,
    kind: AtomicU32,
    a: AtomicU64,
    b: AtomicU64,
}

/// Cache-line padding for the hot positions so producers and consumers
/// do not false-share.
#[repr(align(128))]
struct Padded(AtomicU64);

/// The bounded lock-free event ring. See the module docs for the
/// protocol and loss semantics.
pub struct EventRing {
    slots: Box<[Slot]>,
    mask: u64,
    /// Enqueue position (doubles as the next sequence number).
    head: Padded,
    /// Dequeue position.
    tail: Padded,
    /// Pushes rejected because the ring was full.
    dropped: Padded,
    /// Pushes accepted.
    recorded: Padded,
}

impl EventRing {
    /// Create a ring holding `capacity` events (rounded up to a power of
    /// two, at least 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|i| Slot {
                stamp: AtomicU64::new(i as u64),
                kind: AtomicU32::new(0),
                a: AtomicU64::new(0),
                b: AtomicU64::new(0),
            })
            .collect();
        EventRing {
            slots,
            mask: cap as u64 - 1,
            head: Padded(AtomicU64::new(0)),
            tail: Padded(AtomicU64::new(0)),
            dropped: Padded(AtomicU64::new(0)),
            recorded: Padded(AtomicU64::new(0)),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Pushes rejected because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.0.load(Ordering::Relaxed)
    }

    /// Pushes accepted (equals drained events + events still queued).
    pub fn recorded(&self) -> u64 {
        self.recorded.0.load(Ordering::Relaxed)
    }

    /// Try to push an event. Returns its sequence number, or `None` (and
    /// bumps the drop counter) if the ring is full. Lock-free: never
    /// blocks, never overwrites an unconsumed event.
    pub fn push(&self, kind: u32, a: u64, b: u64) -> Option<u64> {
        let mut pos = self.head.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == pos {
                // Slot free for this position: claim it.
                match self.head.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        slot.kind.store(kind, Ordering::Relaxed);
                        slot.a.store(a, Ordering::Relaxed);
                        slot.b.store(b, Ordering::Relaxed);
                        // Publish: consumers acquire this stamp before
                        // touching the payload, so it is never torn.
                        slot.stamp.store(pos + 1, Ordering::Release);
                        self.recorded.0.fetch_add(1, Ordering::Relaxed);
                        return Some(pos);
                    }
                    Err(actual) => pos = actual,
                }
            } else if (stamp.wrapping_sub(pos) as i64) < 0 {
                // Slot still holds last lap's unconsumed event: full.
                self.dropped.0.fetch_add(1, Ordering::Relaxed);
                return None;
            } else {
                // Another producer claimed this position; chase the head.
                pos = self.head.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop the oldest event, if any.
    pub fn pop(&self) -> Option<Event> {
        let mut pos = self.tail.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == pos + 1 {
                // Published event at this position: claim it.
                match self.tail.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let ev = Event {
                            seq: pos,
                            kind: slot.kind.load(Ordering::Relaxed),
                            a: slot.a.load(Ordering::Relaxed),
                            b: slot.b.load(Ordering::Relaxed),
                        };
                        // Hand the slot to the next lap's producer.
                        slot.stamp
                            .store(pos + self.slots.len() as u64, Ordering::Release);
                        return Some(ev);
                    }
                    Err(actual) => pos = actual,
                }
            } else if (stamp.wrapping_sub(pos + 1) as i64) < 0 {
                // Nothing published at this position yet: empty.
                return None;
            } else {
                // Another consumer claimed this position; chase the tail.
                pos = self.tail.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Drain everything currently queued into `into`, in sequence order.
    pub fn drain(&self, into: &mut Vec<Event>) {
        while let Some(ev) = self.pop() {
            into.push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_payload() {
        let ring = EventRing::new(8);
        assert_eq!(ring.push(1, 10, 11), Some(0));
        assert_eq!(ring.push(2, 20, 21), Some(1));
        let e0 = ring.pop().unwrap();
        assert_eq!((e0.seq, e0.kind, e0.a, e0.b), (0, 1, 10, 11));
        let e1 = ring.pop().unwrap();
        assert_eq!((e1.seq, e1.kind, e1.a, e1.b), (1, 2, 20, 21));
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let ring = EventRing::new(4);
        for i in 0..4 {
            assert!(ring.push(0, i, 0).is_some());
        }
        for _ in 0..3 {
            assert!(ring.push(0, 99, 0).is_none());
        }
        assert_eq!(ring.dropped(), 3);
        assert_eq!(ring.recorded(), 4);
        // Draining frees the slots again.
        let mut out = Vec::new();
        ring.drain(&mut out);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|e| e.a < 4), "dropped event leaked: {out:?}");
        assert!(ring.push(0, 5, 0).is_some());
    }

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(EventRing::new(0).capacity(), 2);
        assert_eq!(EventRing::new(3).capacity(), 4);
        assert_eq!(EventRing::new(1024).capacity(), 1024);
    }

    #[test]
    fn wraps_many_laps() {
        let ring = EventRing::new(4);
        let mut expect_seq = 0u64;
        for lap in 0..100u64 {
            for i in 0..4u64 {
                assert_eq!(ring.push(7, lap, i), Some(expect_seq + i));
            }
            let mut out = Vec::new();
            ring.drain(&mut out);
            assert_eq!(out.len(), 4);
            for (i, e) in out.iter().enumerate() {
                assert_eq!(e.seq, expect_seq + i as u64);
                assert_eq!(e.a, lap);
            }
            expect_seq += 4;
        }
        assert_eq!(ring.dropped(), 0);
    }
}
