//! Low-overhead telemetry for the compression-cache workspace.
//!
//! Douglis's evaluation hinges on measured internals — compression
//! ratios, cleaner activity, page-in/page-out latencies (Tables 2/3) —
//! and the software-defined compressed tiers descended from the paper
//! (zswap and friends) are tuned entirely from continuously exported
//! tier-split telemetry. This crate is that layer for the workspace:
//!
//! - [`CounterBank`] — striped, cache-padded monotonic counters. One
//!   relaxed `fetch_add` per increment, per-field-exact aggregation on
//!   read (no more lock-and-copy stats structs).
//! - [`AtomicHistogram`] — fixed-size log-bucketed latency histograms
//!   sharing `cc_util::Histogram`'s bucket scheme; recording is
//!   wait-free and allocation-free, reading yields p50/p90/p99/max.
//! - [`EventRing`] — a lock-free bounded MPMC ring of structured
//!   events with sequence numbers and accurate drop counting; full
//!   rings drop (and count) rather than block or overwrite.
//! - [`Snapshot`] / [`Exporter`] — aggregate everything on demand and
//!   render it as JSON, Prometheus text, or an aligned table, either
//!   synchronously or from a background timer thread.
//!
//! The [`Telemetry`] facade bundles one of each behind a single handle.
//! Its hot-path cost budget: a counter bump is one uncontended atomic
//! add on a private cache line; a histogram record is four; an event is
//! one CAS plus three stores. The `storebench --smoke` CI gate measures
//! the end-to-end overhead on the store's mixed zipfian workload and
//! fails the build if instrumentation costs more than 5%.

#![warn(missing_docs)]

pub mod counters;
pub mod hist;
pub mod ring;
pub mod snapshot;
pub mod trace;

pub use counters::CounterBank;
pub use hist::{AtomicHistogram, HistSummary};
pub use ring::{Event, EventRing};
pub use snapshot::{ExportFormat, ExportTarget, Exporter, Snapshot};
pub use trace::{AnomalyKind, DumpSink, Span, SpanRing, TraceCtx, Tracer, TracerBuilder};

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Instant, SystemTime};

/// Static description of what a [`Telemetry`] instance tracks: the
/// counter, operation (latency histogram), and event-kind name tables.
/// Indices into these slices are the handles the instrumented code uses.
#[derive(Debug, Clone, Copy)]
pub struct TelemetrySpec {
    /// Monotonic counter names.
    pub counters: &'static [&'static str],
    /// Timed-operation names (one latency histogram each).
    pub ops: &'static [&'static str],
    /// Structured event-kind names.
    pub events: &'static [&'static str],
}

/// Default event-ring capacity (events kept between snapshots).
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// One telemetry instance: a counter bank, a latency histogram per
/// operation, cumulative event counts, and the event ring.
///
/// Counters are always live (they are the system's statistics of
/// record). Latency sampling and event capture can be disabled at
/// construction ([`Telemetry::timing_enabled`]); instrumented code
/// checks that flag before calling the clock, so a disabled instance
/// costs nothing but the counter adds.
pub struct Telemetry {
    spec: TelemetrySpec,
    timing: bool,
    counters: CounterBank,
    ops: Box<[AtomicHistogram]>,
    event_counts: Box<[AtomicU64]>,
    ring: EventRing,
    started: Instant,
}

impl Telemetry {
    /// Create an instance with `stripes` counter stripes (typically the
    /// shard count) and the default ring capacity.
    pub fn new(spec: TelemetrySpec, stripes: usize) -> Self {
        Self::with_options(spec, stripes, DEFAULT_RING_CAPACITY, true)
    }

    /// Create an instance choosing the ring capacity and whether latency
    /// sampling / event capture start enabled.
    pub fn with_options(
        spec: TelemetrySpec,
        stripes: usize,
        ring_capacity: usize,
        timing: bool,
    ) -> Self {
        Telemetry {
            spec,
            timing,
            counters: CounterBank::new(stripes, spec.counters),
            ops: (0..spec.ops.len())
                .map(|_| AtomicHistogram::new())
                .collect(),
            event_counts: (0..spec.events.len()).map(|_| AtomicU64::new(0)).collect(),
            ring: EventRing::new(ring_capacity),
            started: Instant::now(),
        }
    }

    /// The name tables this instance was built with.
    pub fn spec(&self) -> &TelemetrySpec {
        &self.spec
    }

    /// Whether latency sampling and event capture are enabled. Hot paths
    /// check this before calling `Instant::now()`; cold paths (the spill
    /// writer, GC) record unconditionally.
    #[inline]
    pub fn timing_enabled(&self) -> bool {
        self.timing
    }

    /// Bump `counter` by `n` on `stripe`. Always live.
    #[inline]
    pub fn count(&self, stripe: usize, counter: usize, n: u64) {
        self.counters.add(stripe, counter, n);
    }

    /// Aggregated sum of `counter` across stripes.
    pub fn counter_sum(&self, counter: usize) -> u64 {
        self.counters.sum(counter)
    }

    /// Record a latency sample (nanoseconds) for `op`.
    #[inline]
    pub fn record(&self, op: usize, ns: u64) {
        self.ops[op].record(ns);
    }

    /// Record a latency sample for `op` carrying a trace id (0 =
    /// untraced) so the histogram can retain tail exemplars; see
    /// [`AtomicHistogram::record_traced`].
    #[inline]
    pub fn record_traced(&self, op: usize, ns: u64, trace: u64) {
        self.ops[op].record_traced(ns, trace);
    }

    /// Seconds since this instance was created.
    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Percentile summary of `op`'s histogram.
    pub fn op_summary(&self, op: usize) -> HistSummary {
        self.ops[op].summary()
    }

    /// Record a structured event: bumps the cumulative per-kind count
    /// and pushes into the ring (dropping, counted, if full). Returns
    /// the event's sequence number if the ring accepted it.
    #[inline]
    pub fn event(&self, kind: usize, a: u64, b: u64) -> Option<u64> {
        self.event_counts[kind].fetch_add(1, Ordering::Relaxed);
        self.ring.push(kind as u32, a, b)
    }

    /// Direct access to the event ring (tests, custom drains).
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// Take a snapshot: counter sums, op summaries, cumulative event
    /// counts, and the drained ring window since the last snapshot.
    /// Starts with an `uptime_seconds` gauge and the wall-clock
    /// timestamp; further gauges are appended by the caller via
    /// [`Snapshot::gauge`].
    pub fn snapshot(&self) -> Snapshot {
        let mut recent = Vec::new();
        self.ring.drain(&mut recent);
        Snapshot {
            counters: self.counters.sums(),
            gauges: vec![("uptime_seconds", self.uptime_seconds())],
            ops: self
                .spec
                .ops
                .iter()
                .enumerate()
                .map(|(i, &n)| (n, self.ops[i].summary()))
                .collect(),
            events: self
                .spec
                .events
                .iter()
                .enumerate()
                .map(|(i, &n)| (n, self.event_counts[i].load(Ordering::Relaxed)))
                .collect(),
            recent,
            events_dropped: self.ring.dropped(),
            events_recorded: self.ring.recorded(),
            taken_unix_s: SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: TelemetrySpec = TelemetrySpec {
        counters: &["puts", "gets"],
        ops: &["put", "get"],
        events: &["evict", "gc"],
    };

    #[test]
    fn end_to_end_snapshot() {
        let tel = Telemetry::new(SPEC, 4);
        assert!(tel.timing_enabled());
        tel.count(0, 0, 3);
        tel.count(3, 1, 2);
        tel.record(0, 150);
        tel.record(0, 250);
        tel.record(1, 50);
        assert_eq!(tel.event(1, 7, 8), Some(0));
        assert_eq!(tel.event(0, 1, 2), Some(1));
        let snap = tel.snapshot().gauge("resident_bytes", 999);
        assert_eq!(snap.counter("puts"), Some(3));
        assert_eq!(snap.counter("gets"), Some(2));
        assert_eq!(snap.op("put").unwrap().count, 2);
        assert_eq!(snap.op("get").unwrap().max, 50);
        assert_eq!(snap.event_count("gc"), Some(1));
        assert_eq!(snap.event_count("evict"), Some(1));
        assert_eq!(snap.recent.len(), 2);
        assert_eq!(snap.recent[0].kind, 1);
        assert_eq!(snap.gauges[0].0, "uptime_seconds");
        assert_eq!(snap.gauges.last(), Some(&("resident_bytes", 999)));
        assert!(snap.taken_unix_s > 0);
        // The window drains: a second snapshot sees no new events but
        // keeps the cumulative counts.
        let snap2 = tel.snapshot();
        assert!(snap2.recent.is_empty());
        assert_eq!(snap2.event_count("gc"), Some(1));
    }

    #[test]
    fn disabled_timing_flag() {
        let tel = Telemetry::with_options(SPEC, 1, 16, false);
        assert!(!tel.timing_enabled());
        // Counters still work; that is the contract.
        tel.count(0, 0, 1);
        assert_eq!(tel.counter_sum(0), 1);
    }

    #[test]
    fn event_counts_survive_ring_drops() {
        let tel = Telemetry::with_options(SPEC, 1, 2, true);
        for i in 0..10 {
            tel.event(0, i, 0);
        }
        let snap = tel.snapshot();
        // Cumulative count includes dropped pushes; the ring window and
        // drop counter reconcile exactly.
        assert_eq!(snap.event_count("evict"), Some(10));
        assert_eq!(snap.recent.len() as u64 + snap.events_dropped, 10);
    }
}
