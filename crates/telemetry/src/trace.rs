//! Request tracing and the flight recorder.
//!
//! Aggregate telemetry (counters, histograms, the event ring) answers
//! "how is the system doing on average" — it cannot explain a *single*
//! slow or wrong request. This module adds the per-request layer:
//!
//! - **Sampled traces.** A [`Tracer`] samples one request in N
//!   ([`TracerBuilder::sample_every`]) and hands the request a
//!   [`TraceCtx`] — a trace id plus the parent span id. Every
//!   instrumented stage (wire dispatch, store put/get, compression,
//!   spill queue + batch commit, spill read + CRC verify) allocates a
//!   span id, does its work, and records a fixed-size [`Span`] with its
//!   parent link, so one sampled request yields a complete causal span
//!   tree across threads — the spill writer inherits the ctx through
//!   the job queue and reports queue-wait and service time separately.
//! - **Flight recorder.** Spans land in per-stripe [`SpanRing`]s —
//!   bounded lock-free *overwrite* rings (newest always win, unlike the
//!   drop-on-full [`crate::EventRing`], because a post-incident dump
//!   wants the most recent history). When an anomaly fires
//!   ([`Tracer::anomaly`]: corrupt extent, degraded-mode entry, a
//!   backpressure stall, a GC pause over threshold) the recorder
//!   renders the recent spans plus the last anomalies as JSON and
//!   writes them to the configured [`DumpSink`] — bounded by an
//!   auto-dump budget so an anomaly storm cannot fill a disk. The same
//!   JSON is available on demand via [`Tracer::dump_json`] (the
//!   server's `DUMP` opcode).
//!
//! Overhead: an unsampled request pays one relaxed `fetch_add` for the
//! sampling decision; a sampled one pays a handful of `Instant::now()`
//! calls and one ring slot per span. The loadgen `--smoke --trace` CI
//! gate holds the end-to-end cost at default sampling under 5%.

use std::collections::{HashSet, VecDeque};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Span operation codes (the `op` field of a [`Span`]).
pub mod sop {
    /// A wire request (root span; `codec` holds the opcode, `arg` the
    /// connection id).
    pub const REQUEST: u8 = 1;
    /// Store put (`arg` = key).
    pub const STORE_PUT: u8 = 2;
    /// Store get (`arg` = key).
    pub const STORE_GET: u8 = 3;
    /// Codec probe + compression (`codec` = chosen codec id).
    pub const COMPRESS: u8 = 4;
    /// Spill batch write for one job (`queue_ns` = channel wait,
    /// `arg` = file offset, or the key if the batch failed).
    pub const SPILL_WRITE: u8 = 5;
    /// Spill read + CRC verify (`arg` = file offset).
    pub const SPILL_READ: u8 = 6;
    /// Spill-file GC pass (background; `arg` = bytes relocated).
    pub const GC: u8 = 7;
    /// Reply encode/flush for one response (`arg` = connection id).
    pub const REPLY_FLUSH: u8 = 8;
    /// A backpressure park interval on a connection (background;
    /// `arg` = connection id, `service_ns` = parked duration).
    pub const PARK: u8 = 9;
    /// Tier promotion: a warm or cold page decompressed back into the
    /// hot tier on re-access (`arg` = key, `tier` = source tier).
    pub const PROMOTE: u8 = 10;
    /// Background demoter sweep (background; `arg` = pages demoted).
    pub const DEMOTE: u8 = 11;
    /// Name table, index-aligned with the codes above.
    pub const NAMES: &[&str] = &[
        "?",
        "request",
        "store_put",
        "store_get",
        "compress",
        "spill_write",
        "spill_read",
        "gc",
        "reply_flush",
        "park",
        "promote",
        "demote",
    ];

    /// The printable name of an op code.
    pub fn name(op: u8) -> &'static str {
        NAMES.get(op as usize).copied().unwrap_or("?")
    }
}

/// Storage tier touched by a span (the `tier` field).
pub mod tier {
    /// No tier involved (or not applicable).
    pub const NONE: u8 = 0;
    /// Compressed-in-memory tier.
    pub const MEMORY: u8 = 1;
    /// Same-filled fast path (no bytes stored anywhere).
    pub const SAME_FILLED: u8 = 2;
    /// Spill-file tier.
    pub const SPILL: u8 = 3;
    /// Uncompressed-resident hot tier.
    pub const HOT: u8 = 4;
    /// Name table, index-aligned with the codes above.
    pub const NAMES: &[&str] = &["none", "memory", "same_filled", "spill", "hot"];

    /// The printable name of a tier code.
    pub fn name(t: u8) -> &'static str {
        NAMES.get(t as usize).copied().unwrap_or("?")
    }
}

/// The trace context a sampled request carries through the stack: its
/// trace id and the span id the next child span should use as parent.
/// `trace_id == 0` means "not sampled" — instrumentation is skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// The request's trace id (0 = unsampled).
    pub trace_id: u64,
    /// Span id of the enclosing span (0 at the root).
    pub parent_span: u32,
}

impl TraceCtx {
    /// The unsampled context: instrumentation no-ops on it.
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        parent_span: 0,
    };

    /// Whether this request is being traced.
    #[inline]
    pub fn sampled(&self) -> bool {
        self.trace_id != 0
    }

    /// The context children of `span` should carry.
    pub fn child(&self, span: u32) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            parent_span: span,
        }
    }
}

/// One causal span record: what ran, where, under which trace, and how
/// long it queued vs. executed. Fixed-size; packs into
/// [`SPAN_WORDS`] `u64` words in the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Owning trace (0 = untraced background work, e.g. GC).
    pub trace_id: u64,
    /// This span's id (unique per tracer).
    pub span_id: u32,
    /// Parent span id (0 = root).
    pub parent: u32,
    /// Operation code ([`sop`]).
    pub op: u8,
    /// Storage tier touched ([`tier`]).
    pub tier: u8,
    /// Codec id involved (or, for [`sop::REQUEST`], the wire opcode).
    pub codec: u8,
    /// Outcome code (op-specific; 0 = ok).
    pub status: u8,
    /// Start time, nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Time spent queued before service (spill jobs).
    pub queue_ns: u64,
    /// Service (execution) time.
    pub service_ns: u64,
    /// Op-specific argument: key, connection id, or file offset.
    pub arg: u64,
}

/// `u64` words a packed span occupies in a ring slot.
pub const SPAN_WORDS: usize = 7;

impl Span {
    fn pack(&self) -> [u64; SPAN_WORDS] {
        [
            self.trace_id,
            (self.span_id as u64) << 32 | self.parent as u64,
            self.op as u64
                | (self.tier as u64) << 8
                | (self.codec as u64) << 16
                | (self.status as u64) << 24,
            self.start_ns,
            self.queue_ns,
            self.service_ns,
            self.arg,
        ]
    }

    fn unpack(w: &[u64; SPAN_WORDS]) -> Span {
        Span {
            trace_id: w[0],
            span_id: (w[1] >> 32) as u32,
            parent: w[1] as u32,
            op: w[2] as u8,
            tier: (w[2] >> 8) as u8,
            codec: (w[2] >> 16) as u8,
            status: (w[2] >> 24) as u8,
            start_ns: w[3],
            queue_ns: w[4],
            service_ns: w[5],
            arg: w[6],
        }
    }
}

struct SpanSlot {
    /// Seqlock stamp: `2*pos + 1` while the writer of ring position
    /// `pos` is mid-write (odd), `2*pos + 2` once published (even).
    stamp: AtomicU64,
    words: [AtomicU64; SPAN_WORDS],
}

/// A bounded lock-free *overwrite* ring of spans.
///
/// Producers claim positions with one `fetch_add` and overwrite the
/// oldest slot — a flight recorder must keep the newest history, the
/// opposite bias of the drop-on-full [`crate::EventRing`]. Each slot
/// carries a seqlock stamp so the (rare, dump-time) reader detects and
/// skips slots torn by a concurrent writer instead of blocking it.
pub struct SpanRing {
    slots: Box<[SpanSlot]>,
    head: AtomicU64,
}

impl SpanRing {
    /// Create a ring with at least `capacity` slots (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> SpanRing {
        let cap = capacity.next_power_of_two().max(2);
        SpanRing {
            slots: (0..cap)
                .map(|_| SpanSlot {
                    stamp: AtomicU64::new(0),
                    words: [const { AtomicU64::new(0) }; SPAN_WORDS],
                })
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans ever pushed (pushes beyond capacity overwrite).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Record one span, overwriting the oldest if the ring is full.
    pub fn push(&self, span: &Span) {
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[pos as usize & (self.slots.len() - 1)];
        slot.stamp.store(2 * pos + 1, Ordering::Release);
        fence(Ordering::Release);
        for (w, v) in slot.words.iter().zip(span.pack()) {
            w.store(v, Ordering::Relaxed);
        }
        slot.stamp.store(2 * pos + 2, Ordering::Release);
    }

    /// Append every intact span currently held (oldest first) to
    /// `into`. Slots a concurrent writer is overwriting are skipped —
    /// the reader never blocks a producer.
    pub fn snapshot(&self, into: &mut Vec<Span>) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        for pos in head.saturating_sub(cap)..head {
            let slot = &self.slots[pos as usize & (self.slots.len() - 1)];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp != 2 * pos + 2 {
                continue; // mid-write, or already overwritten
            }
            let mut w = [0u64; SPAN_WORDS];
            for (dst, src) in w.iter_mut().zip(slot.words.iter()) {
                *dst = src.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.stamp.load(Ordering::Relaxed) != stamp {
                continue; // torn by a writer racing the copy
            }
            into.push(Span::unpack(&w));
        }
    }
}

/// What tripped the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// A spill extent failed CRC verification (`a` = key, `b` = file
    /// offset).
    Corrupt,
    /// The store entered degraded (memory-only) mode (`a` =
    /// consecutive failures at entry).
    Degraded,
    /// A backpressure-parked connection made no flush progress for the
    /// stall threshold (`a` = connection id, `b` = pending bytes).
    BackpressureStall,
    /// A GC pause exceeded the threshold (`a` = bytes relocated, `b` =
    /// pause ns).
    GcPause,
}

impl AnomalyKind {
    /// The printable name.
    pub fn name(self) -> &'static str {
        match self {
            AnomalyKind::Corrupt => "corrupt",
            AnomalyKind::Degraded => "degraded",
            AnomalyKind::BackpressureStall => "backpressure_stall",
            AnomalyKind::GcPause => "gc_pause",
        }
    }
}

/// One recorded anomaly event.
#[derive(Debug, Clone, Copy)]
pub struct Anomaly {
    /// What happened.
    pub kind: AnomalyKind,
    /// The trace in flight when it fired (0 if none / unsampled).
    pub trace_id: u64,
    /// Kind-specific argument (see [`AnomalyKind`]).
    pub a: u64,
    /// Kind-specific argument (see [`AnomalyKind`]).
    pub b: u64,
    /// Nanoseconds since the tracer's epoch.
    pub at_ns: u64,
}

/// Where automatic flight-recorder dumps go.
pub enum DumpSink {
    /// Discard automatic dumps (on-demand [`Tracer::dump_json`] still
    /// works).
    Null,
    /// Write `ccdump-<n>.json` files into this directory.
    Dir(PathBuf),
    /// Keep dumps in memory — tests and in-process gates read them
    /// back via [`Tracer::dumps`].
    Memory(Mutex<Vec<String>>),
}

/// Builder for a [`Tracer`].
pub struct TracerBuilder {
    sample_every: u64,
    stripes: usize,
    ring_capacity: usize,
    sink: DumpSink,
    gc_pause_threshold: Duration,
    stall_after: Duration,
    auto_dump_budget: u64,
}

impl Default for TracerBuilder {
    fn default() -> Self {
        TracerBuilder {
            sample_every: DEFAULT_SAMPLE_EVERY,
            stripes: 4,
            ring_capacity: 4096,
            sink: DumpSink::Null,
            gc_pause_threshold: Duration::from_millis(50),
            stall_after: Duration::from_millis(500),
            auto_dump_budget: 16,
        }
    }
}

impl TracerBuilder {
    /// Sample one request in `n` (0 disables request sampling; the
    /// flight recorder and anomalies stay live).
    pub fn sample_every(mut self, n: u64) -> Self {
        self.sample_every = n;
        self
    }

    /// Span-ring stripes (writers hash across them; more stripes,
    /// less producer contention).
    pub fn stripes(mut self, n: usize) -> Self {
        self.stripes = n.max(1);
        self
    }

    /// Span slots per stripe.
    pub fn ring_capacity(mut self, n: usize) -> Self {
        self.ring_capacity = n;
        self
    }

    /// Send automatic dumps to `sink`.
    pub fn sink(mut self, sink: DumpSink) -> Self {
        self.sink = sink;
        self
    }

    /// Keep automatic dumps in memory ([`DumpSink::Memory`]).
    pub fn sink_memory(self) -> Self {
        self.sink(DumpSink::Memory(Mutex::new(Vec::new())))
    }

    /// Write automatic dumps as files into `dir`.
    pub fn sink_dir(self, dir: impl Into<PathBuf>) -> Self {
        self.sink(DumpSink::Dir(dir.into()))
    }

    /// GC pauses above this trip a [`AnomalyKind::GcPause`] dump.
    pub fn gc_pause_threshold(mut self, t: Duration) -> Self {
        self.gc_pause_threshold = t;
        self
    }

    /// A parked connection with no flush progress for this long trips
    /// a [`AnomalyKind::BackpressureStall`] dump.
    pub fn stall_after(mut self, t: Duration) -> Self {
        self.stall_after = t;
        self
    }

    /// Cap on automatic dumps over the tracer's lifetime (an anomaly
    /// storm must not fill the sink).
    pub fn auto_dump_budget(mut self, n: u64) -> Self {
        self.auto_dump_budget = n;
        self
    }

    /// Build the tracer.
    pub fn build(self) -> Tracer {
        Tracer {
            sample_every: self.sample_every,
            sample_ctr: AtomicU64::new(0),
            next_trace: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
            epoch: Instant::now(),
            rings: (0..self.stripes)
                .map(|_| SpanRing::new(self.ring_capacity))
                .collect(),
            anomalies: Mutex::new(VecDeque::new()),
            sink: self.sink,
            dumps_written: AtomicU64::new(0),
            auto_dumps_left: AtomicU64::new(self.auto_dump_budget),
            gc_pause_threshold: self.gc_pause_threshold,
            stall_after: self.stall_after,
        }
    }
}

/// Default request-sampling rate: one request in this many.
pub const DEFAULT_SAMPLE_EVERY: u64 = 64;

/// Anomaly events retained for dumps.
const ANOMALY_CAP: usize = 64;

/// The tracing + flight-recorder engine. One instance is shared (via
/// `Arc`) by the store and the server so a single trace spans both
/// telemetry domains; see the module docs for the model.
pub struct Tracer {
    sample_every: u64,
    sample_ctr: AtomicU64,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    epoch: Instant,
    rings: Box<[SpanRing]>,
    anomalies: Mutex<VecDeque<Anomaly>>,
    sink: DumpSink,
    dumps_written: AtomicU64,
    auto_dumps_left: AtomicU64,
    gc_pause_threshold: Duration,
    stall_after: Duration,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("sample_every", &self.sample_every)
            .field("stripes", &self.rings.len())
            .field("dumps_written", &self.dumps_written())
            .finish_non_exhaustive()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::builder().build()
    }
}

impl Tracer {
    /// Start building a tracer.
    pub fn builder() -> TracerBuilder {
        TracerBuilder::default()
    }

    /// The configured 1-in-N sampling rate (0 = request sampling off).
    pub fn sample_rate(&self) -> u64 {
        self.sample_every
    }

    /// GC pauses above this duration trip an anomaly dump.
    pub fn gc_pause_threshold(&self) -> Duration {
        self.gc_pause_threshold
    }

    /// Parked connections making no progress for this long trip an
    /// anomaly dump.
    pub fn stall_after(&self) -> Duration {
        self.stall_after
    }

    /// The sampling decision for a new request: a fresh root
    /// [`TraceCtx`] one time in N, [`TraceCtx::NONE`] otherwise. One
    /// relaxed `fetch_add` on the unsampled path.
    #[inline]
    pub fn sample(&self) -> TraceCtx {
        if self.sample_every == 0 {
            return TraceCtx::NONE;
        }
        if self
            .sample_ctr
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.sample_every)
        {
            TraceCtx {
                trace_id: self.next_trace.fetch_add(1, Ordering::Relaxed),
                parent_span: 0,
            }
        } else {
            TraceCtx::NONE
        }
    }

    /// Allocate a span id under `ctx` (0 — record nothing — when the
    /// request is unsampled).
    #[inline]
    pub fn new_span(&self, ctx: TraceCtx) -> u32 {
        if !ctx.sampled() {
            return 0;
        }
        self.alloc_span()
    }

    /// Allocate a span id unconditionally (background spans: GC, park
    /// intervals — recorded with `trace_id` 0).
    pub fn alloc_span(&self) -> u32 {
        self.next_span.fetch_add(1, Ordering::Relaxed) as u32
    }

    /// Nanoseconds from the tracer's epoch to `t` (0 if `t` predates
    /// the epoch).
    pub fn now_ns(&self, t: Instant) -> u64 {
        t.checked_duration_since(self.epoch)
            .map_or(0, |d| d.as_nanos() as u64)
    }

    /// Nanoseconds since the tracer's epoch.
    pub fn elapsed_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record `span` into the stripe-`stripe` ring (wrapped modulo the
    /// stripe count).
    #[inline]
    pub fn record(&self, stripe: usize, span: &Span) {
        self.rings[stripe % self.rings.len()].push(span);
    }

    /// Every intact span currently held across all stripes.
    pub fn spans(&self) -> Vec<Span> {
        let mut out = Vec::new();
        for ring in self.rings.iter() {
            ring.snapshot(&mut out);
        }
        out
    }

    /// Spans ever recorded (across stripes, including overwritten).
    pub fn spans_recorded(&self) -> u64 {
        self.rings.iter().map(|r| r.recorded()).sum()
    }

    /// Whether any stripe has wrapped (overwritten spans). While
    /// false, [`Tracer::spans`] is the complete record and every
    /// sampled trace must form a closed tree.
    pub fn wrapped(&self) -> bool {
        self.rings
            .iter()
            .any(|r| r.recorded() > r.capacity() as u64)
    }

    /// Record an anomaly and (budget permitting) write an automatic
    /// flight-recorder dump to the sink.
    pub fn anomaly(&self, kind: AnomalyKind, trace_id: u64, a: u64, b: u64) {
        {
            let mut q = self.anomalies.lock().expect("anomaly buffer poisoned");
            if q.len() == ANOMALY_CAP {
                q.pop_front();
            }
            q.push_back(Anomaly {
                kind,
                trace_id,
                a,
                b,
                at_ns: self.elapsed_ns(),
            });
        }
        // Budget check first: a storm of anomalies keeps recording into
        // the bounded buffer above but stops producing dumps.
        if self
            .auto_dumps_left
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_err()
        {
            return;
        }
        let json = self.dump_json(kind.name());
        let n = self.dumps_written.fetch_add(1, Ordering::Relaxed);
        match &self.sink {
            DumpSink::Null => {}
            DumpSink::Dir(dir) => {
                let _ = std::fs::create_dir_all(dir);
                let _ = std::fs::write(dir.join(format!("ccdump-{n}.json")), &json);
            }
            DumpSink::Memory(v) => v.lock().expect("dump sink poisoned").push(json),
        }
    }

    /// Automatic dumps written so far.
    pub fn dumps_written(&self) -> u64 {
        self.dumps_written.load(Ordering::Relaxed)
    }

    /// The dumps held by a [`DumpSink::Memory`] sink (empty for other
    /// sinks).
    pub fn dumps(&self) -> Vec<String> {
        match &self.sink {
            DumpSink::Memory(v) => v.lock().expect("dump sink poisoned").clone(),
            _ => Vec::new(),
        }
    }

    /// The recent anomaly events (oldest first).
    pub fn anomalies(&self) -> Vec<Anomaly> {
        self.anomalies
            .lock()
            .expect("anomaly buffer poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// Render the flight-recorder state — recent anomalies plus every
    /// intact span — as a JSON document.
    pub fn dump_json(&self, reason: &str) -> String {
        let mut s = String::with_capacity(4096);
        let _ = write!(
            s,
            "{{\n  \"reason\": \"{}\",\n  \"at_ns\": {},\n  \"sample_every\": {},\n  \"anomalies\": [",
            reason.escape_default(),
            self.elapsed_ns(),
            self.sample_every,
        );
        for (i, a) in self.anomalies().iter().enumerate() {
            let _ = write!(
                s,
                "{}\n    {{\"kind\": \"{}\", \"trace_id\": {}, \"a\": {}, \"b\": {}, \"at_ns\": {}}}",
                if i == 0 { "" } else { "," },
                a.kind.name(),
                a.trace_id,
                a.a,
                a.b,
                a.at_ns,
            );
        }
        s.push_str("\n  ],\n  \"spans\": [");
        let mut spans = self.spans();
        spans.sort_by_key(|sp| (sp.trace_id, sp.start_ns, sp.span_id));
        for (i, sp) in spans.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n    {{\"trace_id\": {}, \"span\": {}, \"parent\": {}, \"op\": \"{}\", \"tier\": \"{}\", \"codec\": {}, \"status\": {}, \"start_ns\": {}, \"queue_ns\": {}, \"service_ns\": {}, \"arg\": {}}}",
                if i == 0 { "" } else { "," },
                sp.trace_id,
                sp.span_id,
                sp.parent,
                sop::name(sp.op),
                tier::name(sp.tier),
                sp.codec,
                sp.status,
                sp.start_ns,
                sp.queue_ns,
                sp.service_ns,
                sp.arg,
            );
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// Count spans whose parent link does not resolve to a recorded span
/// of the same trace — an incomplete span tree. Background spans
/// (`trace_id` 0) are exempt. Meaningful while the rings have not
/// wrapped ([`Tracer::wrapped`]); after overwrite, missing parents may
/// simply have been evicted.
pub fn orphan_spans(spans: &[Span]) -> usize {
    let ids: HashSet<(u64, u32)> = spans
        .iter()
        .filter(|s| s.trace_id != 0)
        .map(|s| (s.trace_id, s.span_id))
        .collect();
    spans
        .iter()
        .filter(|s| s.trace_id != 0 && s.parent != 0 && !ids.contains(&(s.trace_id, s.parent)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn span_packs_and_unpacks_losslessly() {
        let s = Span {
            trace_id: 0xDEAD_BEEF_CAFE,
            span_id: 7,
            parent: 3,
            op: sop::SPILL_READ,
            tier: tier::SPILL,
            codec: 2,
            status: 1,
            start_ns: 123_456_789,
            queue_ns: 42,
            service_ns: 9_999,
            arg: u64::MAX,
        };
        assert_eq!(Span::unpack(&s.pack()), s);
    }

    #[test]
    fn ring_keeps_newest_on_overwrite() {
        let ring = SpanRing::new(4);
        for i in 0..10u64 {
            ring.push(&Span {
                trace_id: 1,
                span_id: i as u32 + 1,
                arg: i,
                ..Span::default()
            });
        }
        let mut got = Vec::new();
        ring.snapshot(&mut got);
        // Capacity 4: exactly the last 4 pushes survive, oldest first.
        assert_eq!(got.iter().map(|s| s.arg).collect::<Vec<_>>(), [6, 7, 8, 9]);
        assert_eq!(ring.recorded(), 10);
    }

    #[test]
    fn ring_snapshot_survives_concurrent_pushes() {
        let ring = Arc::new(SpanRing::new(64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        ring.push(&Span {
                            trace_id: t + 1,
                            span_id: 1,
                            arg: i ^ (t + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                            ..Span::default()
                        });
                        i += 1;
                    }
                })
            })
            .collect();
        let mut scratch = Vec::new();
        for _ in 0..200 {
            scratch.clear();
            ring.snapshot(&mut scratch);
            for s in &scratch {
                // Every surviving record is internally consistent: a
                // torn slot would show a trace id without its writer's
                // arg pattern.
                assert!(s.trace_id >= 1 && s.trace_id <= 4, "torn span: {s:?}");
            }
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn sampling_is_one_in_n() {
        let tr = Tracer::builder().sample_every(8).build();
        let sampled = (0..800).filter(|_| tr.sample().sampled()).count();
        assert_eq!(sampled, 100);
        // Distinct trace ids.
        let a = tr.sample_ctr.load(Ordering::Relaxed);
        assert_eq!(a, 800);
        let off = Tracer::builder().sample_every(0).build();
        assert!((0..100).all(|_| !off.sample().sampled()));
    }

    #[test]
    fn anomaly_dumps_to_memory_sink_within_budget() {
        let tr = Tracer::builder()
            .sample_every(1)
            .sink_memory()
            .auto_dump_budget(2)
            .build();
        let ctx = tr.sample();
        let span = tr.new_span(ctx);
        tr.record(
            0,
            &Span {
                trace_id: ctx.trace_id,
                span_id: span,
                op: sop::STORE_GET,
                tier: tier::SPILL,
                arg: 42,
                ..Span::default()
            },
        );
        tr.anomaly(AnomalyKind::Corrupt, ctx.trace_id, 42, 4096);
        tr.anomaly(AnomalyKind::Degraded, 0, 3, 0);
        tr.anomaly(AnomalyKind::GcPause, 0, 1, 2); // over budget: recorded, not dumped
        assert_eq!(tr.dumps_written(), 2);
        let dumps = tr.dumps();
        assert_eq!(dumps.len(), 2);
        assert!(dumps[0].contains("\"reason\": \"corrupt\""));
        assert!(dumps[0].contains("\"kind\": \"corrupt\", \"trace_id\": 1, \"a\": 42, \"b\": 4096"));
        assert!(dumps[0].contains("\"op\": \"store_get\""));
        assert_eq!(tr.anomalies().len(), 3);
        // On-demand dump still renders past the auto budget.
        assert!(tr.dump_json("on-demand").contains("\"gc_pause\""));
    }

    #[test]
    fn orphan_detection_flags_broken_trees() {
        let mk = |trace_id, span_id, parent| Span {
            trace_id,
            span_id,
            parent,
            ..Span::default()
        };
        // Closed tree + background span: no orphans.
        assert_eq!(orphan_spans(&[mk(1, 1, 0), mk(1, 2, 1), mk(0, 9, 5)]), 0);
        // Child pointing at a span that was never recorded.
        assert_eq!(orphan_spans(&[mk(1, 1, 0), mk(1, 3, 2)]), 1);
        // Parent exists but under a different trace.
        assert_eq!(orphan_spans(&[mk(1, 1, 0), mk(2, 2, 1)]), 1);
    }
}
