//! What compresses, what doesn't, and why it decides everything.
//!
//! §5.2's Table 1 comes down to two per-application numbers: how well
//! pages compress under LZRW1, and how many fail the 4:3 keep-compressed
//! threshold. This example runs the real codecs over the data classes the
//! workloads generate and prints both — the same measurement the
//! simulator makes on every eviction.
//!
//! ```sh
//! cargo run --release --example compressibility
//! ```

use compression_cache::compress::{
    compression_fraction, CompressDecision, Compressor, Lzrw1, Lzss, Rle, ThresholdPolicy,
};
use compression_cache::util::SplitMix64;
use compression_cache::workloads::datagen;

const PAGE: usize = 4096;

fn classes() -> Vec<(&'static str, &'static str, Vec<u8>)> {
    let mut four_to_one = vec![0u8; 16 * PAGE];
    for (i, chunk) in four_to_one.chunks_mut(PAGE).enumerate() {
        datagen::fill_4to1(chunk, i as u64);
    }
    let mut dp = vec![0u8; 16 * PAGE];
    datagen::fill_dp_values(&mut dp, 3);
    let mut rng = SplitMix64::new(1);
    let noise: Vec<u8> = (0..16 * PAGE).map(|_| rng.next_u64() as u8).collect();
    vec![
        (
            "zero pages",
            "(fresh zero-fill memory)",
            vec![0u8; 16 * PAGE],
        ),
        ("thrasher fill", "(paper: ~4:1)", four_to_one),
        ("DP stripe", "(compare; paper: ~3:1)", dp),
        (
            "sorted words",
            "(sort partial; paper: ~3:1)",
            datagen::repetitive_text(16 * PAGE, 7),
        ),
        (
            "shuffled words",
            "(sort random; paper: 98% fail 4:3)",
            datagen::shuffled_text(16 * PAGE, 7),
        ),
        ("random bytes", "(worst case)", noise),
    ]
}

fn main() {
    let threshold = ThresholdPolicy::default();
    println!(
        "{:<16} {:<30} {:>10} {:>10} {:>10} {:>12}",
        "data class", "", "lzrw1", "lzss", "rle", "fail 4:3"
    );
    for (name, note, data) in classes() {
        let mut lzrw1 = Lzrw1::new();
        let mut lzss = Lzss::new();
        let mut rle = Rle::new();
        let mut rejected = 0;
        let mut pages = 0;
        let mut buf = Vec::new();
        for page in data.chunks(PAGE) {
            pages += 1;
            let n = lzrw1.compress(page, &mut buf);
            if threshold.evaluate(page.len(), n) == CompressDecision::Reject {
                rejected += 1;
            }
        }
        println!(
            "{:<16} {:<30} {:>9.1}% {:>9.1}% {:>9.1}% {:>10.1}%",
            name,
            note,
            compression_fraction(&mut lzrw1, &data) * 100.0,
            compression_fraction(&mut lzss, &data) * 100.0,
            compression_fraction(&mut rle, &data) * 100.0,
            100.0 * rejected as f64 / pages as f64,
        );
    }
    println!(
        "\n(Numbers are compressed size as % of original — lower is better.\n\
         Pages over 75% are not worth keeping compressed: the 4:3 rule.)"
    );
}
