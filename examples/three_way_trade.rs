//! The three-way memory trade of §4.2, watched live.
//!
//! Sprite already traded physical memory between virtual memory and the
//! file buffer cache; the compression cache makes it three consumers.
//! This example alternates file streaming and VM pressure and prints who
//! holds the machine's frames after each phase.
//!
//! ```sh
//! cargo run --release --example three_way_trade
//! ```

use compression_cache::sim::{Mode, SimConfig, System};

const MB: u64 = 1024 * 1024;

fn print_holdings(sys: &System, label: &str) {
    let c = sys.frame_counts();
    println!(
        "{label:<34} resident VM pages: {:>4}   file blocks: {:>4}   cc frames: {:>4}   free: {:>4}",
        c.vm, c.file_cache, c.compression_cache, c.free
    );
}

fn main() {
    let mut sys = System::new(SimConfig::decstation(2 * MB as usize, Mode::Cc));
    println!("machine: 512 frames (2 MB), compression cache enabled\n");

    // Phase 1: stream a 4 MB file — the buffer cache takes over memory.
    let file = sys.file_create("bigfile", 1024);
    let mut buf = vec![0u8; 4096];
    for b in 0..1024u64 {
        sys.file_read(file, b * 4096, &mut buf);
    }
    print_holdings(&sys, "after streaming a 4 MB file:");

    // Phase 2: a 3 MB VM working set — VM pages displace file blocks,
    // and the compression cache grows to absorb the overflow.
    let seg = sys.create_segment(3 * MB);
    for p in 0..(3 * MB / 4096) {
        sys.write_u32(seg, p * 4096, p as u32);
    }
    print_holdings(&sys, "after a 3 MB VM working set:");

    // Phase 3: re-stream part of the file — blocks claw back frames from
    // the LRU ends of the other consumers.
    for b in 0..256u64 {
        sys.file_read(file, b * 4096, &mut buf);
    }
    print_holdings(&sys, "after re-reading 1 MB of the file:");

    // Phase 4: back to the VM working set.
    for p in 0..(3 * MB / 4096) {
        let _ = sys.read_u32(seg, p * 4096);
    }
    print_holdings(&sys, "after revisiting the working set:");

    println!(
        "\nAllocation moved among all three consumers by comparing biased LRU\n\
         ages — no static partition anywhere (§4.2)."
    );
}
