//! §6 future work, built: a compressed file buffer cache.
//!
//! *"the system could keep part or all of the file buffer cache in
//! compressed format in order to improve the cache hit rate."*
//!
//! A 4 MB file on a 2 MB machine, re-read in random order. With the
//! extension, blocks evicted from the buffer cache park in the
//! compression cache as discardable compressed copies; a re-read is a
//! decompression instead of a seek.
//!
//! ```sh
//! cargo run --release --example compressed_file_cache
//! ```

use compression_cache::sim::{Mode, SimConfig, System};
use compression_cache::util::SplitMix64;

const MB: usize = 1024 * 1024;

fn run(flag: bool) -> (f64, u64, u64) {
    let mut cfg = SimConfig::decstation(2 * MB, Mode::Cc);
    cfg.cc.compress_file_cache = flag;
    let mut sys = System::new(cfg);
    let file = sys.file_create("corpus", 1024); // 4 MB
    let mut buf = vec![0u8; 4096];
    // Cold streaming pass (equal cost both ways).
    for b in 0..1024u64 {
        sys.file_read(file, b * 4096, &mut buf);
    }
    let t0 = sys.now();
    let reads0 = sys.disk_stats().reads;
    // Random re-read pass — the interactive phase.
    let mut rng = SplitMix64::new(7);
    for _ in 0..2048 {
        let b = rng.gen_range(1024);
        sys.file_read(file, b * 4096, &mut buf);
    }
    (
        (sys.now() - t0).as_secs_f64(),
        sys.disk_stats().reads - reads0,
        sys.sys_stats().file_cc_hits,
    )
}

fn main() {
    let (secs_off, reads_off, _) = run(false);
    let (secs_on, reads_on, cc_hits) = run(true);
    println!("random re-read of a 4 MB file on a 2 MB machine:");
    println!("  extension off: {secs_off:>7.2}s, {reads_off} disk reads");
    println!("  extension on:  {secs_on:>7.2}s, {reads_on} disk reads ({cc_hits} served by decompression)");
    println!("  speedup: {:.2}x", secs_off / secs_on);
    assert!(secs_on < secs_off);
}
