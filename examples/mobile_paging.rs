//! The paper's motivating scenario: paging on a mobile computer.
//!
//! §1: *"mobile computers may communicate over slower wireless networks
//! and run either diskless or with small, slower local disks. At the same
//! time, the processors on mobile computers are steadily improving in
//! speed."* — so the compression cache should help *more* as the backing
//! store gets slower (§6).
//!
//! This example runs the same over-committed workload against four
//! backing stores — the paper's RZ57, a small mobile drive, a 10 Mb/s
//! Ethernet file server, and a 2 Mb/s wireless link — and reports the
//! std-vs-cc speedup for each.
//!
//! ```sh
//! cargo run --release --example mobile_paging
//! ```

use compression_cache::disk::DiskParams;
use compression_cache::sim::{Mode, SimConfig, System};
use compression_cache::util::SplitMix64;

const MB: u64 = 1024 * 1024;

/// A small interactive-application mix: a hot working set plus periodic
/// sweeps over a larger heap (e.g. a mail reader re-sorting folders).
fn run_app(mut sys: System) -> f64 {
    let heap = 5 * MB;
    let seg = sys.create_segment(heap);
    let pages = heap / 4096;
    let mut rng = SplitMix64::new(2024);
    // Build the heap.
    for p in 0..pages {
        sys.write_u32(seg, p * 4096, p as u32);
    }
    // Interactive phase: 90% hits a hot eighth, 10% sweeps cold pages.
    for _ in 0..60_000 {
        let p = if rng.gen_bool(0.9) {
            rng.gen_range(pages / 8)
        } else {
            rng.gen_range(pages)
        };
        let v = sys.read_u32(seg, p * 4096);
        sys.write_u32(seg, p * 4096, v.wrapping_add(1));
    }
    sys.now().as_secs_f64()
}

fn main() {
    println!("5 MB application on a 2 MB mobile computer, by backing store:\n");
    println!(
        "{:<18} {:>10} {:>10} {:>9}",
        "backing store", "std (s)", "cc (s)", "speedup"
    );
    for disk in [
        DiskParams::rz57(),
        DiskParams::mobile_hdd(),
        DiskParams::ethernet_10mbps(),
        DiskParams::wireless_2mbps(),
    ] {
        let mut secs = Vec::new();
        for mode in [Mode::Std, Mode::Cc] {
            let mut cfg = SimConfig::decstation(2 * MB as usize, mode);
            cfg.disk = disk.clone();
            secs.push(run_app(System::new(cfg)));
        }
        println!(
            "{:<18} {:>10.1} {:>10.1} {:>8.2}x",
            disk.name,
            secs[0],
            secs[1],
            secs[0] / secs[1]
        );
    }
    println!(
        "\nThe slower the backing store, the more each avoided I/O is worth —\n\
         the §6 trend that motivated compressed paging for mobile machines."
    );
}
