//! Quickstart: a machine that appears to have more memory than it does.
//!
//! Builds a 2 MB machine with the compression cache, runs a 4 MB working
//! set over it, and prints where the faults were served from — the
//! paper's core effect in thirty lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use compression_cache::sim::{Mode, SimConfig, System};

const MB: u64 = 1024 * 1024;

fn main() {
    for mode in [Mode::Std, Mode::Cc] {
        let mut sys = System::new(SimConfig::decstation(2 * MB as usize, mode));
        let seg = sys.create_segment(4 * MB);

        // Touch a 4 MB working set, three sequential passes, writing one
        // word per page (the paper's `thrasher` pattern).
        for pass in 0..3u32 {
            for page in 0..(4 * MB / 4096) {
                let off = page * 4096;
                let v = sys.read_u32(seg, off);
                sys.write_u32(seg, off, v.wrapping_add(pass));
            }
        }

        let report = sys.report();
        println!("{}", report.render());
    }
    println!(
        "The cc run should be several times faster: its faults are served by\n\
         decompression from memory instead of disk I/O (compare the `from\n\
         cache` vs `from disk` fault counts and the disk traffic above)."
    );
}
