//! The §4.2 bias knob is application-dependent — demonstrated.
//!
//! *"Interestingly, although a single penalty between VM and the file
//! system works well across a wide range of applications, the optimal
//! penalty for the compression cache is application-dependent."*
//!
//! Two applications, one knob (`cc_age_scale`; lower = the cache defends
//! its memory harder):
//!
//! - a **cyclic sweeper** (thrasher-like, zero reuse locality) wants the
//!   cache as large as possible — every fault can be a decompression;
//! - a **skewed reader** (90% of accesses to an eighth of its pages)
//!   wants its hot set left *uncompressed* — an over-aggressive cache
//!   steals frames from it and turns hot hits into decompressions.
//!
//! ```sh
//! cargo run --release --example tuning_bias
//! ```

use compression_cache::sim::{Mode, SimConfig, System};
use compression_cache::util::SplitMix64;

const MB: u64 = 1024 * 1024;

fn cyclic_secs(scale: f64) -> f64 {
    let mut cfg = SimConfig::decstation(2 * MB as usize, Mode::Cc);
    cfg.cc.cc_age_scale = scale;
    let mut sys = System::new(cfg);
    let seg = sys.create_segment(4 * MB);
    let pages = 4 * MB / 4096;
    for pass in 0..4u32 {
        for p in 0..pages {
            let v = sys.read_u32(seg, p * 4096);
            sys.write_u32(seg, p * 4096, v + pass);
        }
    }
    sys.now().as_secs_f64()
}

fn skewed_secs(scale: f64) -> f64 {
    let mut cfg = SimConfig::decstation(2 * MB as usize, Mode::Cc);
    cfg.cc.cc_age_scale = scale;
    let mem_pages = (cfg.user_memory_bytes / 4096) as u64;
    let mut sys = System::new(cfg);
    // A 8 MB heap of ~2:1 pages with a hot set sized to ~95% of memory:
    // any frames the cache hoards come straight out of the hot set.
    let seg = sys.create_segment(8 * MB);
    let pages = 8 * MB / 4096;
    let mut page = vec![0u8; 4096];
    for p in 0..pages {
        compression_cache::workloads::datagen::fill_2to1(&mut page, p);
        sys.write_slice(seg, p * 4096, &page);
    }
    let hot = mem_pages * 95 / 100;
    let mut rng = SplitMix64::new(55);
    for _ in 0..100_000 {
        let p = if rng.gen_bool(0.99) {
            rng.gen_range(hot)
        } else {
            hot + rng.gen_range(pages - hot)
        };
        let _ = sys.read_u32(seg, p * 4096);
    }
    sys.now().as_secs_f64()
}

fn main() {
    println!(
        "{:>12} {:>16} {:>16}",
        "cc_age_scale", "cyclic sweep (s)", "skewed reader (s)"
    );
    let mut best_cyclic = (f64::INFINITY, 0.0);
    let mut best_skewed = (f64::INFINITY, 0.0);
    for scale in [4.0, 1.0, 0.25, 0.05, 0.01] {
        let c = cyclic_secs(scale);
        let s = skewed_secs(scale);
        if c < best_cyclic.0 {
            best_cyclic = (c, scale);
        }
        if s < best_skewed.0 {
            best_skewed = (s, scale);
        }
        println!("{scale:>12.2} {c:>16.2} {s:>16.2}");
    }
    println!(
        "\nBest for the cyclic sweep: scale = {}; best for the skewed reader: scale = {}.",
        best_cyclic.1, best_skewed.1
    );
    println!("One knob, two winners — the paper's point about application-dependent bias.");
}
