//! The compression cache as a modern standalone library.
//!
//! `cc_core::store::CompressedStore` packages the paper's mechanism the
//! way its descendants (zram, zswap) expose it: a thread-safe, bounded
//! compressed page store with a real background spill thread. This
//! example swaps a working set into it from several threads and prints
//! the effective memory amplification.
//!
//! ```sh
//! cargo run --release --example standalone_store
//! ```

use std::sync::Arc;

use compression_cache::core::store::{CompressedStore, StoreConfig};
use compression_cache::workloads::datagen;

const PAGE: usize = 4096;

fn main() {
    let budget = 4 * 1024 * 1024; // 4 MB of compressed residency
    let spill = std::env::temp_dir().join("cc-standalone-spill.bin");
    let store = Arc::new(CompressedStore::new(StoreConfig::with_spill(
        budget, &spill,
    )));

    // Eight threads page out 4 MB each: 32 MB of pages into a 4 MB budget.
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            let mut page = vec![0u8; PAGE];
            for i in 0..1024u64 {
                let key = t << 32 | i;
                datagen::fill_4to1(&mut page, key);
                page[..8].copy_from_slice(&key.to_le_bytes());
                store.put(key, &page).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    store.flush();

    // Verify a sample from every thread's range.
    let mut out = vec![0u8; PAGE];
    let mut checked = 0;
    for t in 0..8u64 {
        for i in (0..1024u64).step_by(37) {
            let key = t << 32 | i;
            assert!(store.get(key, &mut out).unwrap(), "key {key:#x} lost");
            assert_eq!(&out[..8], &key.to_le_bytes(), "key {key:#x} corrupted");
            checked += 1;
        }
    }

    let s = store.stats();
    let logical = store.len() * PAGE;
    println!("pages stored:        {}", store.len());
    println!("logical bytes:       {} MB", logical / (1024 * 1024));
    println!("memory budget:       {} MB", budget / (1024 * 1024));
    println!(
        "compressed resident: {:.2} MB",
        s.memory_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("spilled to disk:     {} pages", s.spilled);
    println!(
        "spill batching:      {} pages in {} batched writes ({:.1}/batch)",
        s.spilled,
        s.spill_batches,
        s.spilled as f64 / s.spill_batches.max(1) as f64
    );
    println!(
        "spill file:          {} KB ({} KB dead, {} GC runs)",
        s.bytes_on_spill / 1024,
        s.spill_dead_bytes / 1024,
        s.gc_runs
    );
    println!("verified:            {checked} sampled pages intact");
    println!(
        "amplification:       {:.1}x the pages a raw 4 MB cache could hold",
        logical as f64 / budget as f64
    );
    let _ = std::fs::remove_file(&spill);
}
