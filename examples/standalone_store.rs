//! The compression cache as a modern standalone library.
//!
//! `cc_core::store::CompressedStore` packages the paper's mechanism the
//! way its descendants (zram, zswap) expose it: a thread-safe, bounded
//! compressed page store with a real background spill thread. This
//! example swaps a working set into it from several threads, prints
//! the effective memory amplification, and ends with the store's own
//! telemetry snapshot — per-tier latency histograms and the structured
//! event window — rendered through `util::fmt`.
//!
//! ```sh
//! cargo run --release --example standalone_store
//! ```

use std::sync::Arc;

use compression_cache::core::store::{CompressedStore, StoreConfig};
use compression_cache::util::fmt;
use compression_cache::workloads::datagen;

const PAGE: usize = 4096;

fn main() {
    let budget = 4 * 1024 * 1024; // 4 MB of compressed residency
    let spill = std::env::temp_dir().join("cc-standalone-spill.bin");
    let store = Arc::new(CompressedStore::new(StoreConfig::with_spill(
        budget, &spill,
    )));

    // Eight threads page out 4 MB each: 32 MB of pages into a 4 MB budget.
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            let mut page = vec![0u8; PAGE];
            for i in 0..1024u64 {
                let key = t << 32 | i;
                datagen::fill_4to1(&mut page, key);
                page[..8].copy_from_slice(&key.to_le_bytes());
                store.put(key, &page).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    store.flush().unwrap();

    // Verify a sample from every thread's range.
    let mut out = vec![0u8; PAGE];
    let mut checked = 0;
    for t in 0..8u64 {
        for i in (0..1024u64).step_by(37) {
            let key = t << 32 | i;
            assert!(store.get(key, &mut out).unwrap(), "key {key:#x} lost");
            assert_eq!(&out[..8], &key.to_le_bytes(), "key {key:#x} corrupted");
            checked += 1;
        }
    }

    let s = store.stats();
    let logical = store.len() * PAGE;
    println!("pages stored:        {}", store.len());
    println!("logical bytes:       {}", fmt::bytes(logical as u64));
    println!("memory budget:       {}", fmt::bytes(budget as u64));
    println!("compressed resident: {}", fmt::bytes(s.memory_bytes));
    println!("spilled to disk:     {} pages", s.spilled);
    println!(
        "spill batching:      {} pages in {} batched writes ({:.1}/batch)",
        s.spilled,
        s.spill_batches,
        s.spilled as f64 / s.spill_batches.max(1) as f64
    );
    println!(
        "spill file:          {} ({} dead, {} GC runs, {} relocated)",
        fmt::bytes(s.bytes_on_spill),
        fmt::bytes(s.spill_dead_bytes),
        s.gc_runs,
        fmt::bytes(s.gc_bytes_relocated),
    );
    println!("verified:            {checked} sampled pages intact");
    println!(
        "amplification:       {:.1}x the pages a raw 4 MB cache could hold",
        logical as f64 / budget as f64
    );

    // The same store, through its telemetry plane: counter sums and
    // gauges, nanosecond latency histograms per serving tier, and the
    // ring's structured event counts, all in `util::fmt` tables.
    let snap = store
        .telemetry_snapshot()
        .gauge("logical_bytes", logical as u64);
    println!("\n--- telemetry snapshot ---");
    print!("{}", snap.render_text());
    let _ = std::fs::remove_file(&spill);
}
