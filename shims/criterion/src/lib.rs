//! A vendored, dependency-free stand-in for the `criterion` crate.
//!
//! This workspace builds in a container without a crates registry, so the
//! real `criterion` cannot be fetched. The benches use a small subset of
//! its API; this shim implements that subset with a straightforward
//! warmup + timed-samples loop and plain-text reporting (median ns/iter,
//! plus MiB/s when a [`Throughput`] is set). There are no HTML reports,
//! statistics beyond min/median/mean, or baseline comparisons.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export-compatible `black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1200),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Time spent warming up before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let cfg = self.clone();
        run_one(&cfg, &id.0, None, f);
        self
    }
}

/// Throughput annotation: converts per-iteration time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// How [`Bencher::iter_batched`] amortizes setup; the shim treats all
/// variants identically (setup runs outside the timed region).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Override the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        let cfg = self.criterion.clone();
        run_one(&cfg, &full, self.throughput, f);
        self
    }

    /// Benchmark a closure given a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the payload.
pub struct Bencher {
    /// Iterations to run in the current sample.
    iters: u64,
    /// Measured duration of the current sample.
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called `self.iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows the input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one<F>(cfg: &Criterion, name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warmup: discover a per-sample iteration count while warming caches.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < cfg.warm_up_time {
        f(&mut b);
        if b.elapsed > Duration::ZERO {
            per_iter = b.elapsed / b.iters as u32;
        }
        b.iters = (b.iters * 2).min(1 << 30);
    }
    let sample_budget = cfg.measurement_time / cfg.sample_size as u32;
    let iters_per_sample =
        (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 30) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        b.iters = iters_per_sample;
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns[0];
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;

    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:10.1} MiB/s",
                n as f64 / (1 << 20) as f64 / (median * 1e-9)
            )
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:10.1} Melem/s", n as f64 / 1e6 / (median * 1e-9))
        }
        None => String::new(),
    };
    println!(
        "{name:<48} time: [min {min:>12.1} ns  median {median:>12.1} ns  mean {mean:>12.1} ns]{rate}"
    );
}

/// Declare a group of benchmark functions, with an optional configured
/// `Criterion` (mirrors the real macro's two grammars).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
