//! The case-running machinery behind the [`proptest!`] macro.

use crate::TestRng;

/// Number of cases to run per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many generated cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail with a message (mirrors `proptest::test_runner::TestCaseError::fail`).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Shorthand used by test helpers that return early with `?`.
pub type TestCaseResult = Result<(), TestCaseError>;

fn base_seed(name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = s.parse::<u64>() {
            return seed;
        }
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `case` for each configured case, panicking (with the reproducing
/// seed) on the first failure.
pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = base_seed(name);
    for i in 0..config.cases as u64 {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::new(seed);
        if let Err(e) = case(&mut rng) {
            panic!("property '{name}' failed at case {i} (PROPTEST_SEED={base}): {e}");
        }
    }
}

/// Define property tests. Supports the subset of the real macro's grammar
/// used in this workspace: an optional `#![proptest_config(..)]` header and
/// `#[test] fn name(binding in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each `#[test] fn` item inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run(&config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let mut __case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// `assert!` that fails the property (reporting the seed) instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` flavored [`prop_assert!`]. Follows the `std::assert_eq!`
/// borrowing pattern so any operands valid there are valid here.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                    stringify!($left), stringify!($right), l, r, format!($($fmt)+)
                );
            }
        }
    };
}

/// `assert_ne!` flavored [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}
