//! A vendored, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds in a container without network access to a crates
//! registry, so the real `proptest` cannot be fetched. The tests in this
//! repository use a small, well-defined subset of its API; this shim
//! implements exactly that subset on top of a deterministic SplitMix64
//! generator:
//!
//! - [`Strategy`] with `prop_map`, implemented for integer/bool `any`,
//!   integer ranges, tuples, [`Just`], boxed strategies and unions
//!   (uniform and weighted);
//! - [`collection::vec`] for variable-length vectors and [`option::of`]
//!   for optional values;
//! - the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! - [`test_runner::ProptestConfig`] (`with_cases`) and
//!   [`test_runner::TestCaseError`].
//!
//! Differences from the real crate: cases are generated from a fixed seed
//! (override with `PROPTEST_SEED`), and failing cases are reported with
//! their seed but **not shrunk**. Re-running with the printed seed
//! reproduces the failure deterministically.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Strategies for `Option<T>`, mirroring `proptest::option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Yields `Some` of the inner strategy's value three times out of
    /// four, `None` otherwise (the real crate's default bias).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Deterministic 64-bit generator (SplitMix64), the engine behind every
/// strategy in this shim.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection-free multiply-shift; bias is negligible for test data.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}
