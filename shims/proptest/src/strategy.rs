//! The [`Strategy`] trait and the combinators the workspace tests use.

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of test values. Unlike the real proptest there is no value
/// tree and no shrinking: a strategy simply produces a value from the RNG.
pub trait Strategy {
    /// The type of value this strategy yields.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V, S: Strategy<Value = V> + ?Sized> Strategy for Box<S> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Box a strategy as a trait object (used by [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniformly picks one of its arms per generated value.
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from boxed arms; panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Picks an arm with probability proportional to its weight (the
/// `weight => strategy` form of [`prop_oneof!`]).
pub struct WeightedUnion<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V> WeightedUnion<V> {
    /// Build from `(weight, arm)` pairs; panics if empty or all-zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total > 0,
            "prop_oneof! weights must sum to a positive value"
        );
        WeightedUnion { arms, total }
    }
}

impl<V> Strategy for WeightedUnion<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("pick below total weight")
    }
}

/// The `any::<T>()` entry point: the full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Choose among several strategies yielding the same value type —
/// uniformly (`prop_oneof![a, b]`) or by weight (`prop_oneof![3 => a,
/// 1 => b]`), mirroring the real crate's two forms.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(
            vec![$(($weight as u32, $crate::strategy::boxed($arm))),+],
        )
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}
