//! # compression-cache
//!
//! A from-scratch reproduction of **Fred Douglis, "The Compression Cache:
//! Using On-line Compression to Extend Physical Memory"** (Winter 1993
//! USENIX Conference).
//!
//! The paper adds a new level to the memory hierarchy: a variable-sized
//! region of physical memory that holds VM pages in compressed (LZRW1)
//! form between uncompressed memory and the backing store. This workspace
//! rebuilds the whole system — compressor, disk and file-system models,
//! virtual memory, the compression cache itself, and a deterministic
//! whole-system simulator — plus every workload in the paper's
//! evaluation, and regenerates each of its figures and tables.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`compress`] | `cc-compress` | LZRW1 (from scratch), LZSS, RLE, null; the 4:3 threshold policy |
//! | [`disk`] | `cc-disk` | RZ57 and friends: seeks, rotation, transfer, request queueing |
//! | [`blockfs`] | `cc-blockfs` | Sprite-like 4 KB-block files, read-modify-write semantics, buffer cache |
//! | [`mem`] | `cc-mem` | physical frame pool with real page contents |
//! | [`vm`] | `cc-vm` | segments, page tables, exact-LRU residency |
//! | [`core`] | `cc-core` | **the compression cache**: circular buffer, cleaner, fragments, swap GC |
//! | [`sim`] | `cc-sim` | the whole machine under one virtual clock; the three-way memory arbiter |
//! | [`analytic`] | `cc-analytic` | Figure 1's closed-form models |
//! | [`workloads`] | `cc-workloads` | thrasher, compare, isca, sort, gold |
//!
//! ## Quickstart
//!
//! ```
//! use compression_cache::sim::{Mode, SimConfig, System};
//!
//! // A machine with 2 MB of user memory and the compression cache on.
//! let mut sys = System::new(SimConfig::decstation(2 * 1024 * 1024, Mode::Cc));
//! // An address space twice that size...
//! let seg = sys.create_segment(4 * 1024 * 1024);
//! // ...written end to end: pages beyond memory are compressed, not
//! // (only) sent to disk.
//! for page in 0..(4 * 1024 * 1024 / 4096) {
//!     sys.write_u32(seg, page * 4096, page as u32);
//! }
//! assert!(sys.report().compress_attempts > 0);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/` for
//! the figure/table harnesses (indexed in DESIGN.md and EXPERIMENTS.md).

#![warn(missing_docs)]

pub use cc_analytic as analytic;
pub use cc_blockfs as blockfs;
pub use cc_compress as compress;
pub use cc_core as core;
pub use cc_disk as disk;
pub use cc_mem as mem;
pub use cc_sim as sim;
pub use cc_telemetry as telemetry;
pub use cc_util as util;
pub use cc_vm as vm;
pub use cc_workloads as workloads;
